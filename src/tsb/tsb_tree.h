#ifndef PITREE_TSB_TSB_TREE_H_
#define PITREE_TSB_TSB_TREE_H_

#include <atomic>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"
#include "engine/engine_context.h"
#include "pitree/node_page.h"
#include "storage/buffer_pool.h"
#include "txn/transaction.h"

namespace pitree {

/// Version timestamps: logical, monotonically increasing per tree (drawn
/// from the engine's TimestampOracle when one is wired up, so they share
/// the commit-timestamp timeline).
using TsbTime = uint64_t;

/// "Read latest" sentinel: the maximum representable version time. Every
/// real version timestamp is strictly below it.
inline constexpr TsbTime kTsbTimeMax = ~TsbTime{0};

struct TsbStats {
  std::atomic<uint64_t> key_splits{0};
  std::atomic<uint64_t> time_splits{0};
  std::atomic<uint64_t> root_grows{0};
  std::atomic<uint64_t> history_hops{0};  // history sibling traversals
  std::atomic<uint64_t> side_traversals{0};
  std::atomic<uint64_t> optimistic_gets{0};       // latch-free read successes
  std::atomic<uint64_t> optimistic_fallbacks{0};  // Busy -> latched descent
};

/// One version returned by history queries.
struct TsbVersion {
  TsbTime time;
  bool deleted;        // tombstone
  std::string value;
};

/// One result of a bounded as-of range scan: the key's live value at the
/// scan's time, and the version timestamp it was written at.
struct TsbScanEntry {
  std::string key;
  TsbTime time;
  std::string value;
};

/// The Time-Split B-tree (paper §2.2.2, Figure 1) as a Π-tree instance:
/// the second search structure driven by the same atomic-action machinery.
///
/// Current nodes are responsible for their key space *and its entire
/// history*: a **key sibling pointer** (the B-link side pointer) delegates
/// higher key ranges, and a **history sibling pointer** delegates all
/// versions older than the node's last time split. A time split copies the
/// node's contents into a new *historical* node (which never splits again)
/// and prunes dead versions from the current node; a key split delegates the
/// upper key range to a new current node, which receives a copy of the
/// history pointer (Figure 1's caption, verbatim behavior).
///
/// Both split kinds are independent atomic actions; key-split index-term
/// postings use the same deferred-completion discipline as the Π-tree.
///
/// Storage mapping: records are composite-keyed (user_key · 0x00 · time) in
/// ordinary tree-node pages; the history sibling term is a reserved entry
/// ("\x01H") holding (history page, split time). User keys must be
/// non-empty and free of 0x00 bytes.
///
/// Simplification (documented in DESIGN.md): index nodes are not time-split;
/// historical data is reached through history sibling chains from current
/// nodes. This preserves Figure 1's node-level behavior and the Π-tree
/// generality claim while keeping the index single-dimension.
class TsbTree {
 public:
  TsbTree(EngineContext* ctx, PageId root);
  TsbTree(const TsbTree&) = delete;
  TsbTree& operator=(const TsbTree&) = delete;

  static Status Create(EngineContext* ctx, PageId root);

  /// Returns a fresh timestamp greater than any returned before. Delegates
  /// to the engine's oracle when present so version times, split times, and
  /// commit timestamps share one timeline; standalone trees fall back to a
  /// per-tree clock.
  TsbTime Now();

  /// Writes a new version of `key` at time `t` (t from Now(), or any value
  /// larger than the key's previous versions).
  Status Put(Transaction* txn, const Slice& key, const Slice& value,
             TsbTime t);

  /// Writes a deletion tombstone at time `t`.
  Status Erase(Transaction* txn, const Slice& key, TsbTime t);

  /// MVCC write path: allocates the version time from the oracle,
  /// registering `txn` as an active writer on its first write so snapshots
  /// cannot advance past its uncommitted versions, and retries with a
  /// fresh time when a concurrent committed writer raced the allocation
  /// (the race resolves once this transaction holds the record X lock).
  Status Put(Transaction* txn, const Slice& key, const Slice& value);
  Status Erase(Transaction* txn, const Slice& key);

  /// Latest version as of `t` (NotFound if absent or tombstoned).
  Status GetAsOf(Transaction* txn, const Slice& key, TsbTime t,
                 std::string* value);

  /// Current version (as of "now").
  Status Get(Transaction* txn, const Slice& key, std::string* value) {
    return GetAsOf(txn, key, kTsbTimeMax, value);
  }

  /// Snapshot point read: latest version as of `t` with §4.1 latches only —
  /// zero lock-manager locks. Correct when `t` is an oracle snapshot
  /// timestamp: no version at or below it can be uncommitted or change.
  Status SnapshotGet(const Slice& key, TsbTime t, std::string* value);

  /// Bounded snapshot range scan over user keys in [start, end) as of `t`
  /// (empty `start` = from the first key, empty `end` = unbounded),
  /// appending at most `limit` live results to `out` in key order.
  /// Latch-only, like SnapshotGet.
  Status ScanAsOf(const Slice& start, const Slice& end, TsbTime t,
                  size_t limit, std::vector<TsbScanEntry>* out);

  /// All versions of `key`, newest first, following history chains.
  Status History(Transaction* txn, const Slice& key,
                 std::vector<TsbVersion>* versions);

  /// Structural sanity checker for the TSB instance: current-level B-link
  /// invariants plus history-chain time ordering.
  Status CheckWellFormed(std::string* report) const;

  /// Debug/figure support: renders the node partition (current + history
  /// chains) as text — used by bench_fig1_tsb to reproduce Figure 1.
  Status DumpStructure(std::string* out) const;

  PageId root() const { return root_; }
  const TsbStats& stats() const { return stats_; }

  // Composite-key helpers (exposed for tests).
  static std::string CompositeKey(const Slice& key, TsbTime t);
  static bool SplitComposite(const Slice& composite, Slice* key, TsbTime* t);
  static const char* kHistoryEntryKey;  // reserved in-node entry key

 private:
  struct HistoryTerm {
    PageId page = kInvalidPageId;
    TsbTime split_time = 0;
  };

  static std::string EncodeHistoryTerm(PageId page, TsbTime t);
  static bool DecodeHistoryTerm(const Slice& v, HistoryTerm* term);
  static bool GetHistoryTerm(const NodeRef& node, HistoryTerm* term);

  /// Descends the current tree to the leaf covering `key`, latched in
  /// `mode`; appends unposted-split completions to `pending`.
  Status DescendToLeaf(Transaction* txn, const Slice& key, LatchMode mode,
                       PageHandle* leaf,
                       std::vector<std::pair<PageId, std::string>>* pending);

  /// Splits the X-latched current leaf by time at `t` (atomic action owner
  /// `action`): new historical node takes a full copy; dead versions are
  /// pruned from the current node.
  Status TimeSplit(Transaction* action, PageHandle& leaf, TsbTime t);

  /// Splits the X-latched current leaf by key (atomic action), copying the
  /// history term into the new sibling. Returns the new sibling and its
  /// low key for posting.
  Status KeySplit(Transaction* action, PageHandle& leaf, PageId* sibling,
                  std::string* split_key);

  /// Grows the root exactly like the Π-tree (immortal root page).
  Status GrowRoot(Transaction* action, PageHandle& root_h);

  /// Posts (sep -> sibling) into the parent level, completing key splits.
  Status PostKeySplit(const Slice& approx_key);

  /// Picks and performs the split kind for a full leaf (§2.2.2 policy:
  /// time split when enough dead versions, else key split).
  Status SplitLeaf(PageHandle* leaf, const Slice& key);

  Status WriteVersion(Transaction* txn, const Slice& key, TsbTime t,
                      bool tombstone, const Slice& value);

  /// MVCC write helper: version timestamp from the oracle (registering the
  /// transaction as a writer on first use), with bounded retry on stale
  /// timestamps.
  Status WriteCurrent(Transaction* txn, const Slice& key, bool tombstone,
                      const Slice& value);
  TsbTime AllocateVersionTs(Transaction* txn);

  /// Latch-free as-of lookup (DESIGN.md §15): bounded retries of
  /// TryGetOptimisticOnce; Busy means the optimistic regime could not
  /// settle and the caller must take the latched path. GetAsOf callers
  /// hold the S record lock first (lock-first 2PL); SnapshotGet needs no
  /// lock at all — versions at or below a snapshot time are immutable.
  /// `pending` (nullable, like DescendToLeaf's) receives unposted-key-split
  /// completion hints noticed along the way.
  Status GetOptimistic(const Slice& key, TsbTime t, std::string* value,
                       std::vector<std::pair<PageId, std::string>>* pending);

  /// One epoch-guarded copy-out traversal: descends the current tree by
  /// CompositeKey(key, 0) with version coupling, then resolves the version
  /// along the history chain on validated copies (the latch-free mirror of
  /// DescendToLeaf + ReadVersionInChain). Completion hints are appended to
  /// `pending` only after the epoch section closes (the move-lock probe
  /// blocks on the lock-manager mutex).
  Status TryGetOptimisticOnce(
      const Slice& key, TsbTime t, std::string* value,
      std::vector<std::pair<PageId, std::string>>* pending);

  /// Resolves `key` at time `t` starting from the S-latched chain node
  /// `cur` (the current leaf covering the key), following history sibling
  /// pointers while every version here is newer than `t`. Consumes `cur`
  /// (latch released on every path).
  Status ReadVersionInChain(PageHandle cur, const Slice& key, TsbTime t,
                            std::string* value);

  EngineContext* const ctx_;
  const PageId root_;
  std::atomic<TsbTime> clock_{1};
  mutable TsbStats stats_;
};

}  // namespace pitree

#endif  // PITREE_TSB_TSB_TREE_H_
