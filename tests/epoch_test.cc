// Epoch-based reclamation unit tests (DESIGN.md §15): a reader inside an
// epoch section pins frame reuse — WaitGracePeriod must not return until
// every slot that was active when the period opened has exited — while an
// idle manager completes grace periods without blocking.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "storage/epoch.h"

namespace pitree {
namespace {

TEST(EpochTest, GuardEntersAndExitsSection) {
  EpochManager* em = EpochManager::Global();
  EXPECT_FALSE(em->InEpoch());
  {
    EpochGuard g;
    ASSERT_TRUE(g.active());
    EXPECT_TRUE(em->InEpoch());
  }
  EXPECT_FALSE(em->InEpoch());
}

TEST(EpochTest, NestedGuardsShareOneSlot) {
  EpochManager* em = EpochManager::Global();
  EpochGuard outer;
  ASSERT_TRUE(outer.active());
  {
    EpochGuard inner;
    ASSERT_TRUE(inner.active());
    EXPECT_TRUE(em->InEpoch());
  }
  // The inner exit must not release the outer section.
  EXPECT_TRUE(em->InEpoch());
}

TEST(EpochTest, GracePeriodCompletesImmediatelyWithNoReaders) {
  // Nobody is in an epoch: both calls must return without blocking (the
  // test would hang otherwise and be killed by the harness timeout).
  EpochManager::Global()->WaitGracePeriod();
  { EpochGuard g; ASSERT_TRUE(g.active()); }
  EpochManager::Global()->WaitGracePeriod();
}

TEST(EpochTest, ReaderInEpochPinsGracePeriodUntilExit) {
  EpochManager* em = EpochManager::Global();
  ASSERT_TRUE(em->Enter());
  std::atomic<bool> done{false};
  std::thread waiter([&] {
    EpochManager::Global()->WaitGracePeriod();
    done.store(true, std::memory_order_release);
  });
  // The waiter must stay parked while we sit in the epoch. A false positive
  // here is impossible: if the implementation wrongly lets the grace period
  // complete, `done` flips and the assertion fires.
  for (int i = 0; i < 10; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_FALSE(done.load(std::memory_order_acquire));
  }
  em->Exit();  // our exit is the only thing that can release the waiter
  waiter.join();
  EXPECT_TRUE(done.load());
}

TEST(EpochTest, ReadersEnteringAfterPeriodOpenedDoNotBlockIt) {
  // A grace period waits only for readers present when it *opened*; a
  // steady stream of new readers must not starve the reclaimer.
  std::atomic<bool> stop{false};
  std::thread stream([&] {
    while (!stop.load(std::memory_order_acquire)) {
      EpochGuard g;
      ASSERT_TRUE(g.active());
      std::this_thread::yield();
    }
  });
  for (int i = 0; i < 100; ++i) {
    EpochManager::Global()->WaitGracePeriod();  // must keep returning
  }
  stop.store(true, std::memory_order_release);
  stream.join();
}

}  // namespace
}  // namespace pitree
