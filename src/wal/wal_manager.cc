#include "wal/wal_manager.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

#include "analysis/latch_checker.h"
#include "common/coding.h"
#include "common/crc32.h"
#include "wal/log_reader.h"

namespace pitree {

namespace {

constexpr size_t kFrameHeaderSize = 8;  // crc32 + payload length

/// Slab size for sequential log scans (open-time end search, recovery
/// analysis). Big enough that scan cost is sequential bandwidth, small
/// enough to be irrelevant next to the buffer pool.
constexpr size_t kScanReadAhead = 256 << 10;

}  // namespace

// The §4.1 checker (src/analysis/) tracks append-mutex ownership at rank
// kWalMutex — the leaf of the whole acquisition order — via the ranked
// Mutex itself (common/mutex.h runs the try-then-block dance). The force
// path is built so the rank is unheld at every file Write/Sync; the I/O
// wrappers assert that, so a regression fails loudly instead of
// re-convoying every appender behind one thread's fsync.

Status WalManager::Open(Env* env, const std::string& path,
                        uint64_t group_commit_window_us,
                        uint64_t segment_bytes) {
  ReleasableMutexLock lk(&mu_);
  window_us_ = group_commit_window_us;
  segment_bytes_ = segment_bytes > 0 ? segment_bytes : kDefaultWalSegmentBytes;
  PITREE_RETURN_IF_ERROR(segments_.Open(env, path, /*read_only=*/false));
  // Scan for the end of the valid prefix; a torn tail from a crash is
  // ignored and will be overwritten by subsequent appends. Sealed segments
  // are exactly batch-aligned and fully durable (rolls happen only after a
  // successful sync), so only the active segment can hold a torn tail —
  // starting the scan at its start LSN is enough.
  LogReader reader(segments_.reader_view(), segments_.last_start_lsn(),
                   kScanReadAhead);
  LogRecord rec;
  Lsn end = segments_.last_start_lsn();
  Status scan;
  while ((scan = reader.ReadNext(&rec)).ok()) {
    end = reader.offset();
  }
  // NotFound is the reader's clean end-of-log — including every torn-tail
  // shape (short frame, implausible length, CRC mismatch). Anything else
  // (an I/O fault, or a malformed body behind a valid CRC) must surface
  // instead of silently truncating committed history at the failure point.
  if (!scan.IsNotFound()) return scan;
  durable_.store(end, std::memory_order_release);
  next_.store(end, std::memory_order_release);
  floor_.store(segments_.floor_lsn(), std::memory_order_release);
  // Drop any torn bytes so appends extend a clean prefix.
  return segments_.TruncateActiveTo(end);
}

Status WalManager::TruncateBelow(Lsn floor) {
  analysis::AssertRankNotHeld(analysis::Rank::kWalMutex, "WAL truncate");
  floor = std::min(floor, durable_.load(std::memory_order_acquire));
  uint64_t deleted = 0;
  PITREE_RETURN_IF_ERROR(segments_.TruncateBelow(floor, &deleted));
  if (deleted > 0) {
    n_truncated_segments_.fetch_add(deleted, std::memory_order_relaxed);
    floor_.store(segments_.floor_lsn(), std::memory_order_release);
  }
  return Status::OK();
}

Status WalManager::Append(const LogRecord& rec, Lsn* lsn) {
  return Append(rec, lsn, AppendPublish());
}

Status WalManager::Append(const LogRecord& rec, Lsn* lsn,
                          const AppendPublish& pub) {
  // Encode outside the mutex: the critical section below is a reservation
  // plus two memcpys, never CPU-bound work and never file I/O.
  std::string payload;
  rec.EncodeTo(&payload);
  char header[kFrameHeaderSize];
  EncodeFixed32(header, MaskCrc(Crc32c(payload.data(), payload.size())));
  EncodeFixed32(header + 4, static_cast<uint32_t>(payload.size()));

  ReleasableMutexLock lk(&mu_);
  *lsn = next_.load(std::memory_order_relaxed);
  // Publish transaction state while the mutex is held: the checkpoint
  // begin append takes this same mutex, so every publication for a record
  // below the begin LSN happens-before the ATT snapshot (AppendPublish in
  // the header has the full argument). Relaxed suffices — the mutex
  // provides the ordering; the atomics only make concurrent snapshot
  // reads of post-begin publications defined.
  if (pub.last_lsn != nullptr) {
    pub.last_lsn->store(*lsn, std::memory_order_relaxed);
  }
  if (pub.undo_next != nullptr) {
    pub.undo_next->store(rec.undo_next, std::memory_order_relaxed);
  }
  if (pub.ended != nullptr) {
    pub.ended->store(true, std::memory_order_relaxed);
  }
  frame_starts_.push_back(*lsn);
  active_.append(header, sizeof(header));
  active_.append(payload);
  next_.store(*lsn + sizeof(header) + payload.size(),
              std::memory_order_release);
  n_appends_.fetch_add(1, std::memory_order_relaxed);
  n_appended_bytes_.fetch_add(sizeof(header) + payload.size(),
                              std::memory_order_relaxed);
  return Status::OK();
}

LogReader WalManager::MakeDurableScanner(Lsn start) const {
  return LogReader(segments_.reader_view(), start, kScanReadAhead);
}

Status WalManager::ReadRecord(Lsn lsn, LogRecord* rec) const {
  // Lock-free durable path: bytes below durable_ are immutable — the
  // leader only writes at offsets >= durable_ and durability never
  // retreats — and durable_ always lands on a frame boundary, so a reader
  // that observes lsn < durable_ can decode straight from the file without
  // the append mutex. Per-page lazy redo (recovery/recovery_map.h) leans
  // on this: replay reads during instant restore must not convoy commit
  // appends behind mu_.
  if (lsn < durable_.load(std::memory_order_acquire)) {
    LogReader reader(segments_.reader_view(), lsn);
    return reader.ReadNext(rec);
  }
  ReleasableMutexLock lk(&mu_);
  const Lsn durable = durable_.load(std::memory_order_relaxed);
  if (lsn < durable) {
    // Durability advanced past lsn while acquiring the mutex; read the
    // now-immutable bytes with the mutex dropped, like the fast path.
    lk.Unlock();
    LogReader reader(segments_.reader_view(), lsn);
    return reader.ReadNext(rec);
  }
  // Buffered path: the bytes live in the flushing or active segment. The
  // caller-supplied lsn is only trusted after a boundary check — a
  // mid-frame offset must fail cleanly, not decode garbage.
  if (lsn >= next_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("lsn beyond log end");
  }
  if (!std::binary_search(frame_starts_.begin(), frame_starts_.end(), lsn)) {
    return Status::InvalidArgument("lsn is not a record boundary");
  }
  const std::string* buf = &flushing_;
  Lsn base = durable;
  if (lsn >= durable + flushing_.size()) {
    buf = &active_;
    base = durable + flushing_.size();
  }
  size_t off = lsn - base;
  if (off + kFrameHeaderSize > buf->size()) {
    return Status::Corruption("truncated buffered record");
  }
  uint32_t expected_crc = UnmaskCrc(DecodeFixed32(buf->data() + off));
  uint32_t len = DecodeFixed32(buf->data() + off + 4);
  if (off + kFrameHeaderSize + len > buf->size()) {
    return Status::Corruption("truncated buffered record");
  }
  const char* payload = buf->data() + off + kFrameHeaderSize;
  if (Crc32c(payload, len) != expected_crc) {
    return Status::Corruption("buffered record crc");
  }
  PITREE_RETURN_IF_ERROR(rec->DecodeFrom(Slice(payload, len)));
  rec->lsn = lsn;
  rec->next_lsn = lsn + kFrameHeaderSize + len;
  return Status::OK();
}

Status WalManager::Flush(Lsn lsn) {
  // Durable through the record *at* lsn: every frame boundary below
  // durable_ is fully synced, so durable_ > lsn suffices.
  return WaitUntilDurable(lsn + 1);
}

Status WalManager::FlushAll() {
  return WaitUntilDurable(next_.load(std::memory_order_acquire));
}

Status WalManager::WaitUntilDurable(Lsn upto) {
  if (durable_.load(std::memory_order_acquire) >= upto) return Status::OK();
  ReleasableMutexLock lk(&mu_);
  // Nothing beyond the append point can be waited for (Flush of the last
  // record and FlushAll both land here).
  upto = std::min<Lsn>(upto, next_.load(std::memory_order_relaxed));
  bool slept = false;
  for (;;) {
    if (durable_.load(std::memory_order_relaxed) >= upto) {
      if (slept) n_waiter_wakeups_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    if (!flush_in_progress_) {
      // Leader election: this waiter owns the next batch. Everyone arriving
      // meanwhile appends into the active segment and parks below.
      flush_in_progress_ = true;
      if (window_us_ > 0) {
        // Group-commit window: give concurrent commits time to append their
        // records before the segment swap, without holding the mutex.
        lk.Unlock();
        std::this_thread::sleep_for(std::chrono::microseconds(window_us_));
        lk.Lock();
      }
      Status s = FlushBatchLocked(lk);
      if (s.ok() &&
          durable_.load(std::memory_order_relaxed) -
                  segments_.last_start_lsn() >=
              segment_bytes_) {
        // Roll at the durable batch boundary, I/O outside the mutex. The
        // next batch's base is exactly the new segment's start LSN, so no
        // frame ever spans segments. A failed roll just retries after the
        // next batch — the oversized active segment keeps accepting writes.
        lk.Unlock();
        (void)segments_.RollIfNeeded(
            durable_.load(std::memory_order_acquire), segment_bytes_);
        lk.Lock();
      }
      flush_in_progress_ = false;
      cv_durable_.NotifyAll();
      if (!s.ok()) return s;
      // The swap took every append up to (at least) upto; loop to confirm
      // and handle the retry-after-failure case where the staged batch
      // predated our bytes.
      continue;
    }
    // Follower: park holding nothing but this mutex, which the wait
    // releases. Wake on any durability publish, batch failure, or the
    // leadership becoming vacant.
    const uint64_t epoch = error_epoch_;
    const Lsn seen = durable_.load(std::memory_order_relaxed);
    slept = true;
    while (durable_.load(std::memory_order_relaxed) == seen &&
           error_epoch_ == epoch && flush_in_progress_) {
      cv_durable_.Wait(mu_);
    }
    if (error_epoch_ != epoch &&
        durable_.load(std::memory_order_relaxed) < upto) {
      // The batch that should have carried our bytes failed: surface it
      // rather than report durability that never happened.
      return last_error_;
    }
  }
}

Status WalManager::FlushBatchLocked(ReleasableMutexLock& lk) {
  if (flushing_.empty()) {
    if (active_.empty()) return Status::OK();
    flushing_.swap(active_);
  }
  const Lsn base = durable_.load(std::memory_order_relaxed);
  // I/O outside the mutex: appenders and readers proceed while this batch
  // drains. Only the leader mutates flushing_, and only under mu_, so
  // reading it here unlocked is safe.
  lk.Unlock();
  Status s = DoWrite(base, flushing_);
  if (s.ok()) s = DoSync();
  lk.Lock();
  if (!s.ok()) {
    // The batch stays staged at the same offset: a later force retries it,
    // keeping the durable prefix contiguous. Parked waiters must fail now —
    // their bytes are not durable and this leader cannot say when they
    // will be.
    n_sync_failures_.fetch_add(1, std::memory_order_relaxed);
    ++error_epoch_;
    last_error_ = s;
    return s;
  }
  const Lsn end = base + flushing_.size();
  n_batches_.fetch_add(1, std::memory_order_relaxed);
  n_synced_bytes_.fetch_add(flushing_.size(), std::memory_order_relaxed);
  flushing_.clear();
  while (!frame_starts_.empty() && frame_starts_.front() < end) {
    frame_starts_.pop_front();
  }
  durable_.store(end, std::memory_order_release);
  return Status::OK();
}

Status WalManager::DoWrite(Lsn offset, const std::string& buf) {
  analysis::AssertRankNotHeld(analysis::Rank::kWalMutex, "WAL Write");
  return segments_.WriteAt(offset, buf);
}

Status WalManager::DoSync() {
  analysis::AssertRankNotHeld(analysis::Rank::kWalMutex, "WAL Sync");
  n_sync_calls_.fetch_add(1, std::memory_order_relaxed);
  return segments_.SyncActive();
}

WalStats WalManager::stats() const {
  WalStats s;
  s.appends = n_appends_.load(std::memory_order_relaxed);
  s.appended_bytes = n_appended_bytes_.load(std::memory_order_relaxed);
  s.batches = n_batches_.load(std::memory_order_relaxed);
  s.sync_calls = n_sync_calls_.load(std::memory_order_relaxed);
  s.sync_failures = n_sync_failures_.load(std::memory_order_relaxed);
  s.synced_bytes = n_synced_bytes_.load(std::memory_order_relaxed);
  s.waiter_wakeups = n_waiter_wakeups_.load(std::memory_order_relaxed);
  s.segments = segments_.segment_count();
  s.truncated_segments =
      n_truncated_segments_.load(std::memory_order_relaxed);
  s.wal_disk_bytes = segments_.disk_bytes();
  s.avg_batch_bytes =
      s.batches > 0 ? static_cast<double>(s.synced_bytes) / s.batches : 0.0;
  return s;
}

}  // namespace pitree
