// Property-based tests for the slotted node page: random operation
// sequences checked against a std::map model, parameterized over key/value
// size profiles (TEST_P sweep). These pin down the page-level invariants
// everything else is built on: sorted order, exact content, capacity
// accounting across compaction, and redo determinism (the same payloads
// applied to a fresh page reproduce the same image — the property crash
// recovery relies on).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "pitree/node_page.h"
#include "storage/page.h"

namespace pitree {
namespace {

struct SizeProfile {
  size_t key_min, key_max;
  size_t val_min, val_max;
  const char* name;
};

const SizeProfile kProfiles[] = {
    {4, 12, 1, 16, "small"},
    {8, 24, 50, 200, "medium"},
    {16, 40, 300, 1200, "large"},
    {1, 64, 0, 600, "mixed"},
};

class NodePageProperty : public ::testing::TestWithParam<SizeProfile> {
 protected:
  NodePageProperty() : buf_(new char[kPageSize]()), node_(buf_.get()) {
    PageInitHeader(buf_.get(), 11, PageType::kTreeNode);
    EXPECT_TRUE(node_
                    .ApplyFormat(NodeRef::FormatPayload(
                        0, 0, kBoundLowNegInf | kBoundHighPosInf, Slice(),
                        Slice(), kInvalidPageId))
                    .ok());
  }

  std::string RandomKey(Random* rnd) {
    const SizeProfile& p = GetParam();
    size_t n = p.key_min + rnd->Uniform(p.key_max - p.key_min + 1);
    std::string k;
    for (size_t i = 0; i < n; ++i) {
      k.push_back(static_cast<char>('a' + rnd->Uniform(26)));
    }
    return k;
  }

  std::string RandomValue(Random* rnd) {
    const SizeProfile& p = GetParam();
    size_t n = p.val_min + rnd->Uniform(p.val_max - p.val_min + 1);
    return std::string(n, static_cast<char>('0' + rnd->Uniform(10)));
  }

  void ExpectMatchesModel(const std::map<std::string, std::string>& model) {
    ASSERT_EQ(node_.entry_count(), static_cast<int>(model.size()));
    int i = 0;
    for (const auto& [k, v] : model) {
      EXPECT_EQ(node_.EntryKey(i).ToString(), k) << "slot " << i;
      EXPECT_EQ(node_.EntryValue(i).ToString(), v) << "slot " << i;
      ++i;
    }
  }

  std::unique_ptr<char[]> buf_;
  NodeRef node_;
};

TEST_P(NodePageProperty, RandomOpsMatchModel) {
  const uint64_t seed = TestSeed(0xC0FFEE);
  SCOPED_TRACE("repro: PITREE_TEST_SEED=" + std::to_string(seed));
  Random rnd(seed);
  std::map<std::string, std::string> model;
  std::vector<std::string> live_keys;
  for (int step = 0; step < 5000; ++step) {
    int op = static_cast<int>(rnd.Uniform(10));
    if (op < 5) {  // insert
      std::string k = RandomKey(&rnd);
      std::string v = RandomValue(&rnd);
      if (model.count(k)) {
        EXPECT_TRUE(node_.ApplyInsert(NodeRef::InsertPayload(k, v))
                        .IsCorruption());
      } else if (node_.CanFit(k.size(), v.size())) {
        ASSERT_TRUE(node_.ApplyInsert(NodeRef::InsertPayload(k, v)).ok());
        model[k] = v;
        live_keys.push_back(k);
      } else {
        EXPECT_TRUE(
            node_.ApplyInsert(NodeRef::InsertPayload(k, v)).IsNoSpace());
      }
    } else if (op < 8 && !live_keys.empty()) {  // delete a random live key
      size_t idx = rnd.Uniform(live_keys.size());
      std::string k = live_keys[idx];
      live_keys[idx] = live_keys.back();
      live_keys.pop_back();
      if (model.erase(k)) {
        ASSERT_TRUE(node_.ApplyDelete(NodeRef::DeletePayload(k)).ok());
      }
    } else if (!live_keys.empty()) {  // update a random live key
      const std::string& k = live_keys[rnd.Uniform(live_keys.size())];
      std::string v = RandomValue(&rnd);
      // In-place update may legitimately fail for lack of space.
      Status s = node_.ApplyUpdate(NodeRef::UpdatePayload(k, v));
      if (s.ok()) {
        model[k] = v;
      } else {
        EXPECT_TRUE(s.IsNoSpace());
      }
    }
    if (step % 500 == 0) ExpectMatchesModel(model);
  }
  ExpectMatchesModel(model);
}

TEST_P(NodePageProperty, FreeSpaceNeverLostAcrossChurn) {
  // Fill, empty, repeat: capacity after full drain must return to the
  // initial value (compaction reclaims all fragments).
  const uint64_t seed = TestSeed(42);
  SCOPED_TRACE("repro: PITREE_TEST_SEED=" + std::to_string(seed));
  Random rnd(seed);
  size_t initial_free = node_.FreeSpace();
  for (int round = 0; round < 5; ++round) {
    std::vector<std::string> keys;
    for (;;) {
      std::string k = RandomKey(&rnd);
      std::string v = RandomValue(&rnd);
      if (!node_.CanFit(k.size(), v.size())) break;
      bool found;
      node_.FindSlot(k, &found);
      if (found) continue;
      ASSERT_TRUE(node_.ApplyInsert(NodeRef::InsertPayload(k, v)).ok());
      keys.push_back(k);
    }
    ASSERT_GT(keys.size(), 4u);
    for (const auto& k : keys) {
      ASSERT_TRUE(node_.ApplyDelete(NodeRef::DeletePayload(k)).ok());
    }
    EXPECT_EQ(node_.FreeSpace(), initial_free) << "round " << round;
  }
}

TEST_P(NodePageProperty, RedoDeterminism) {
  // Apply a recorded sequence of ops to two independent pages: final
  // images must agree byte-for-byte in all live regions (we compare the
  // parsed content, since compaction timing may differ... it cannot: the
  // ops are identical, so the layouts match exactly).
  const uint64_t seed = TestSeed(7);
  SCOPED_TRACE("repro: PITREE_TEST_SEED=" + std::to_string(seed));
  Random rnd(seed);
  std::unique_ptr<char[]> other(new char[kPageSize]());
  PageInitHeader(other.get(), 11, PageType::kTreeNode);
  NodeRef replica(other.get());
  std::string fmt = NodeRef::FormatPayload(
      0, 0, kBoundLowNegInf | kBoundHighPosInf, Slice(), Slice(),
      kInvalidPageId);
  ASSERT_TRUE(replica.ApplyFormat(fmt).ok());

  std::map<std::string, std::string> model;
  for (int step = 0; step < 800; ++step) {
    std::string k = RandomKey(&rnd);
    std::string v = RandomValue(&rnd);
    if (model.count(k) || !node_.CanFit(k.size(), v.size())) continue;
    std::string payload = NodeRef::InsertPayload(k, v);
    ASSERT_TRUE(node_.ApplyInsert(payload).ok());
    ASSERT_TRUE(replica.ApplyInsert(payload).ok());
    model[k] = v;
    if (rnd.OneIn(3)) {
      std::string dp = NodeRef::DeletePayload(k);
      ASSERT_TRUE(node_.ApplyDelete(dp).ok());
      ASSERT_TRUE(replica.ApplyDelete(dp).ok());
      model.erase(k);
    }
  }
  // Byte-identical images (modulo the common header, which carries ids).
  EXPECT_EQ(memcmp(buf_.get() + kPageHeaderSize, other.get() + kPageHeaderSize,
                   kPageSize - kPageHeaderSize),
            0);
}

TEST_P(NodePageProperty, SplitPartitionsExactly) {
  const uint64_t seed = TestSeed(99);
  SCOPED_TRACE("repro: PITREE_TEST_SEED=" + std::to_string(seed));
  Random rnd(seed);
  std::map<std::string, std::string> model;
  for (;;) {
    std::string k = RandomKey(&rnd);
    std::string v = RandomValue(&rnd);
    if (!node_.CanFit(k.size(), v.size())) break;
    if (model.count(k)) continue;
    ASSERT_TRUE(node_.ApplyInsert(NodeRef::InsertPayload(k, v)).ok());
    model[k] = v;
  }
  ASSERT_GT(model.size(), 3u);
  std::string split_key = node_.MedianKey().ToString();
  auto moved = node_.EntriesFrom(split_key);
  ASSERT_TRUE(node_.ApplySplit(NodeRef::SplitPayload(split_key, 77)).ok());
  // Source: exactly the keys below split_key, in order.
  size_t below = 0;
  for (const auto& [k, v] : model) {
    if (k < split_key) ++below;
  }
  EXPECT_EQ(node_.entry_count(), static_cast<int>(below));
  EXPECT_EQ(moved.size(), model.size() - below);
  EXPECT_EQ(node_.right_sibling(), 77u);
  EXPECT_EQ(node_.high_key().ToString(), split_key);
  // moved + remaining == model
  std::map<std::string, std::string> rebuilt;
  for (int i = 0; i < node_.entry_count(); ++i) {
    rebuilt[node_.EntryKey(i).ToString()] = node_.EntryValue(i).ToString();
  }
  for (const auto& e : moved) rebuilt[e.key] = e.value;
  EXPECT_EQ(rebuilt, model);
}

INSTANTIATE_TEST_SUITE_P(Profiles, NodePageProperty,
                         ::testing::ValuesIn(kProfiles),
                         [](const ::testing::TestParamInfo<SizeProfile>& i) {
                           return i.param.name;
                         });

}  // namespace
}  // namespace pitree
