#ifndef PITREE_PITREE_COMPLETION_H_
#define PITREE_PITREE_COMPLETION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"
#include "pitree/path.h"

namespace pitree {

/// A completing atomic action scheduled during normal processing (§5.1):
/// either the posting of an index term for a node reached via a side
/// pointer, or the consolidation of an under-utilized node. Jobs are hints:
/// executing one re-tests the tree state and terminates harmlessly when the
/// work was already done or is no longer needed (idempotence, §5.1).
struct CompletionJob {
  enum class Kind : uint8_t { kPostIndexTerm, kConsolidate };
  Kind kind = Kind::kPostIndexTerm;
  PageId tree_root = kInvalidPageId;
  uint8_t level = 0;       // level where the index term is to be posted, or
                           // the parent level for a consolidation
  PageId address = kInvalidPageId;  // new sibling node / under-utilized node
  std::string key;         // the search key that exposed the work
  SavedPath path;          // remembered path (verified before trust, §5.2)
};

/// Queue of completing atomic actions with an optional background worker.
/// In inline mode (Options::inline_completion) trees execute their own
/// pending jobs at the end of each operation and this queue is bypassed.
class CompletionQueue {
 public:
  using Executor = std::function<void(const CompletionJob&)>;

  CompletionQueue() = default;
  ~CompletionQueue() { StopBackground(); }
  CompletionQueue(const CompletionQueue&) = delete;
  CompletionQueue& operator=(const CompletionQueue&) = delete;

  void set_executor(Executor fn) { executor_ = std::move(fn); }

  void Enqueue(CompletionJob job);

  /// Runs queued jobs on the calling thread until the queue is empty.
  void Drain();

  /// Removes and returns every queued job without executing it (benchmarks
  /// use this to replay completions under controlled conditions).
  std::vector<CompletionJob> TakeAll();

  /// Starts/stops a background worker thread that drains continuously.
  void StartBackground();
  void StopBackground();

  uint64_t enqueued_count() const { return enqueued_.load(); }
  uint64_t executed_count() const { return executed_.load(); }

 private:
  void WorkerLoop();

  Executor executor_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<CompletionJob> queue_;
  std::thread worker_;
  bool stop_ = false;
  bool worker_running_ = false;
  std::atomic<uint64_t> enqueued_{0};
  std::atomic<uint64_t> executed_{0};
};

}  // namespace pitree

#endif  // PITREE_PITREE_COMPLETION_H_
