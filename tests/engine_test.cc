// Unit tests for the engine plumbing: space map, page-op dispatch,
// LogAndApply, checkpoint encoding, and transaction manager behavior.

#include <gtest/gtest.h>

#include <memory>

#include "db/database.h"
#include "engine/log_apply.h"
#include "engine/page_alloc.h"
#include "engine/page_apply.h"
#include "env/sim_env.h"
#include "recovery/checkpoint.h"
#include "storage/space_map.h"
#include "wal/wal_manager.h"

namespace pitree {
namespace {

TEST(SpaceMapTest, FormatMarksMetadataPagesAllocated) {
  std::unique_ptr<char[]> page(new char[kPageSize]());
  PageInitHeader(page.get(), 0, PageType::kSpaceMap);
  ASSERT_TRUE(
      ApplySpaceMapRedo(PageOp::kSmFormat, "", page.get()).ok());
  EXPECT_TRUE(SmIsAllocated(page.get(), kSpaceMapPage));
  EXPECT_TRUE(SmIsAllocated(page.get(), kCatalogPage));
  EXPECT_FALSE(SmIsAllocated(page.get(), kFirstAllocatablePage));
}

TEST(SpaceMapTest, SetClearRoundTrip) {
  std::unique_ptr<char[]> page(new char[kPageSize]());
  PageInitHeader(page.get(), 0, PageType::kSpaceMap);
  ASSERT_TRUE(ApplySpaceMapRedo(PageOp::kSmFormat, "", page.get()).ok());
  ASSERT_TRUE(
      ApplySpaceMapRedo(PageOp::kSmSet, SmBitPayload(17), page.get()).ok());
  EXPECT_TRUE(SmIsAllocated(page.get(), 17));
  ASSERT_TRUE(
      ApplySpaceMapRedo(PageOp::kSmClear, SmBitPayload(17), page.get()).ok());
  EXPECT_FALSE(SmIsAllocated(page.get(), 17));
}

TEST(SpaceMapTest, FindFreeSkipsAllocatedAndWraps) {
  std::unique_ptr<char[]> page(new char[kPageSize]());
  PageInitHeader(page.get(), 0, PageType::kSpaceMap);
  ASSERT_TRUE(ApplySpaceMapRedo(PageOp::kSmFormat, "", page.get()).ok());
  EXPECT_EQ(SmFindFree(page.get(), 0), kFirstAllocatablePage);
  ASSERT_TRUE(
      ApplySpaceMapRedo(PageOp::kSmSet, SmBitPayload(2), page.get()).ok());
  EXPECT_EQ(SmFindFree(page.get(), 0), 3u);
  // Hint beyond: wraps around to the beginning.
  EXPECT_EQ(SmFindFree(page.get(), 100), 100u);
  ASSERT_TRUE(
      ApplySpaceMapRedo(PageOp::kSmSet, SmBitPayload(100), page.get()).ok());
  EXPECT_EQ(SmFindFree(page.get(), 100), 101u);
}

TEST(SpaceMapTest, RejectsOutOfRangePage) {
  std::unique_ptr<char[]> page(new char[kPageSize]());
  PageInitHeader(page.get(), 0, PageType::kSpaceMap);
  ASSERT_TRUE(ApplySpaceMapRedo(PageOp::kSmFormat, "", page.get()).ok());
  std::string payload = SmBitPayload(
      static_cast<PageId>(SpaceMapCapacity() + 1));
  EXPECT_TRUE(
      ApplySpaceMapRedo(PageOp::kSmSet, payload, page.get()).IsCorruption());
}

TEST(PageApplyTest, DispatchesByOpRange) {
  std::unique_ptr<char[]> page(new char[kPageSize]());
  PageInitHeader(page.get(), 3, PageType::kTreeNode);
  // Node op via dispatcher.
  std::string fmt = NodeRef::FormatPayload(
      0, 0, kBoundLowNegInf | kBoundHighPosInf, Slice(), Slice(),
      kInvalidPageId);
  EXPECT_TRUE(ApplyAnyRedo(PageOp::kNodeFormat, fmt, page.get()).ok());
  // Unknown op rejected.
  EXPECT_TRUE(ApplyAnyRedo(static_cast<PageOp>(99), "", page.get())
                  .IsCorruption());
  // Logical undo markers are never applied as redo.
  EXPECT_TRUE(ApplyAnyRedo(PageOp::kLogicalInsertUndo, "", page.get())
                  .IsCorruption());
}

TEST(CheckpointCodecTest, RoundTrip) {
  CheckpointData data;
  data.att.push_back({42, true, 1000, 900, false});
  data.att.push_back({43, false, 2000, 0, true});
  data.dpt.emplace_back(7, 500);
  data.dpt.emplace_back(9, 600);
  std::string encoded = EncodeCheckpoint(data);
  CheckpointData decoded;
  ASSERT_TRUE(DecodeCheckpoint(encoded, &decoded).ok());
  ASSERT_EQ(decoded.att.size(), 2u);
  EXPECT_EQ(decoded.att[0].txn_id, 42u);
  EXPECT_TRUE(decoded.att[0].is_system);
  EXPECT_EQ(decoded.att[0].last_lsn, 1000u);
  EXPECT_EQ(decoded.att[1].txn_id, 43u);
  EXPECT_TRUE(decoded.att[1].aborting);
  ASSERT_EQ(decoded.dpt.size(), 2u);
  EXPECT_EQ(decoded.dpt[1].first, 9u);
  EXPECT_EQ(decoded.dpt[1].second, 600u);
}

TEST(CheckpointCodecTest, RejectsTruncation) {
  CheckpointData data;
  data.att.push_back({42, true, 1000, 900, false});
  std::string encoded = EncodeCheckpoint(data);
  encoded.resize(encoded.size() / 2);
  CheckpointData decoded;
  EXPECT_FALSE(DecodeCheckpoint(encoded, &decoded).ok());
}

TEST(CheckpointCodecTest, RejectsTrailingBytes) {
  // A decode that stops early (stale counts, a mis-sized varint) would
  // silently accept a mangled record; any leftover byte must be Corruption.
  CheckpointData data;
  data.att.push_back({42, true, 1000, 900, false, 800});
  data.dpt.emplace_back(7, 500);
  std::string encoded = EncodeCheckpoint(data);
  encoded.push_back('x');
  CheckpointData decoded;
  EXPECT_TRUE(DecodeCheckpoint(encoded, &decoded).IsCorruption());
}

TEST(CheckpointCodecTest, RoundTripsFirstLsn) {
  // first_lsn feeds the WAL truncation floor; losing it in the codec would
  // let truncation delete log a crash undo still needs.
  CheckpointData data;
  data.att.push_back({42, false, 1000, 900, false, 777});
  data.att.push_back({43, false, 2000, 0, true});  // defaulted: unknown
  std::string encoded = EncodeCheckpoint(data);
  CheckpointData decoded;
  ASSERT_TRUE(DecodeCheckpoint(encoded, &decoded).ok());
  ASSERT_EQ(decoded.att.size(), 2u);
  EXPECT_EQ(decoded.att[0].first_lsn, 777u);
  EXPECT_EQ(decoded.att[1].first_lsn, kInvalidLsn);
}

class EngineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Options opts;
    opts.buffer_pool_pages = 64;
    ASSERT_TRUE(Database::Open(opts, &env_, "db", &db_).ok());
  }
  SimEnv env_;
  std::unique_ptr<Database> db_;
};

TEST_F(EngineFixture, AllocFreeAllocReusesPages) {
  EngineContext* ctx = db_->context();
  Transaction* txn = db_->Begin();
  PageId a, b;
  ASSERT_TRUE(EngineAllocPage(ctx, txn, &a).ok());
  ASSERT_TRUE(EngineAllocPage(ctx, txn, &b).ok());
  EXPECT_NE(a, b);
  ASSERT_TRUE(EngineFreePage(ctx, txn, a).ok());
  PageId c;
  ASSERT_TRUE(EngineAllocPage(ctx, txn, &c).ok());
  EXPECT_EQ(c, a);  // lowest free page is reused
  ASSERT_TRUE(db_->Commit(txn).ok());
}

TEST_F(EngineFixture, AbortedAllocationIsReturned) {
  EngineContext* ctx = db_->context();
  Transaction* txn = db_->Begin();
  PageId a;
  ASSERT_TRUE(EngineAllocPage(ctx, txn, &a).ok());
  ASSERT_TRUE(db_->Abort(txn).ok());
  Transaction* txn2 = db_->Begin();
  PageId b;
  ASSERT_TRUE(EngineAllocPage(ctx, txn2, &b).ok());
  EXPECT_EQ(b, a);  // the rollback freed the bit
  (void)db_->Abort(txn2);
}

TEST_F(EngineFixture, ReadOnlyTransactionsLogNothing) {
  PiTree* tree = nullptr;
  ASSERT_TRUE(db_->CreateIndex("t", &tree).ok());
  Transaction* w = db_->Begin();
  ASSERT_TRUE(tree->Insert(w, "k", "v").ok());
  ASSERT_TRUE(db_->Commit(w).ok());

  Lsn before = db_->context()->wal->next_lsn();
  Transaction* r = db_->Begin();
  std::string v;
  ASSERT_TRUE(tree->Get(r, "k", &v).ok());
  ASSERT_TRUE(db_->Commit(r).ok());
  EXPECT_EQ(db_->context()->wal->next_lsn(), before)
      << "read-only transaction appended log records";
}

TEST_F(EngineFixture, AtomicActionCommitDoesNotForceTheLog) {
  // §4.3.1 relative durability: an atomic action's commit leaves the log
  // unflushed; the next user commit carries it out.
  WalManager* wal = db_->context()->wal;
  uint64_t flushes_before = wal->flush_count();
  Transaction* action = db_->context()->txns->Begin(/*is_system=*/true);
  PageId p;
  ASSERT_TRUE(EngineAllocPage(db_->context(), action, &p).ok());
  ASSERT_TRUE(db_->context()->txns->Commit(action).ok());
  EXPECT_EQ(wal->flush_count(), flushes_before);

  PiTree* tree = nullptr;
  ASSERT_TRUE(db_->CreateIndex("t", &tree).ok());
  Transaction* user = db_->Begin();
  ASSERT_TRUE(tree->Insert(user, "k", "v").ok());
  ASSERT_TRUE(db_->Commit(user).ok());
  EXPECT_GT(wal->flush_count(), flushes_before);
}

TEST_F(EngineFixture, LogAndApplyStampsStateIdentifier) {
  EngineContext* ctx = db_->context();
  Transaction* txn = db_->Begin();
  PageId pid;
  ASSERT_TRUE(EngineAllocPage(ctx, txn, &pid).ok());
  PageHandle h;
  ASSERT_TRUE(ctx->pool->FetchPageZeroed(pid, &h).ok());
  h.latch().AcquireX();
  PageInitHeader(h.data(), pid, PageType::kTreeNode);
  std::string fmt = NodeRef::FormatPayload(
      0, 0, kBoundLowNegInf | kBoundHighPosInf, Slice(), Slice(),
      kInvalidPageId);
  Lsn before_lsn = h.page_lsn();
  ASSERT_TRUE(LogAndApply(ctx, txn, h, PageOp::kNodeFormat, fmt,
                          PageOp::kNone, "")
                  .ok());
  EXPECT_GT(h.page_lsn(), before_lsn);
  EXPECT_EQ(h.page_lsn(), txn->last_lsn);
  h.latch().ReleaseX();
  h.Reset();
  (void)db_->Abort(txn);
}

}  // namespace
}  // namespace pitree
