#ifndef PITREE_BASELINE_LC_BTREE_H_
#define PITREE_BASELINE_LC_BTREE_H_

#include <atomic>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"
#include "engine/engine_context.h"
#include "pitree/node_page.h"
#include "storage/buffer_pool.h"
#include "txn/transaction.h"

namespace pitree {

struct LcBTreeStats {
  std::atomic<uint64_t> splits{0};
  std::atomic<uint64_t> root_grows{0};
  std::atomic<uint64_t> restarts{0};
  std::atomic<uint64_t> retained_ancestors{0};  // unsafe-path latch holds
};

/// Baseline 1 (experiment E1): a classic lock-coupling B+-tree in the
/// Bayer–Schkolnick style [1]: no side pointers in the search protocol,
/// readers S-couple down the tree, writers X-couple and *retain* latches on
/// every unsafe ancestor so a split can propagate upward while the whole
/// path stays exclusively latched. Structure changes are therefore serial
/// with respect to any operation touching the affected path — exactly the
/// behavior the Π-tree's decomposed atomic actions avoid.
///
/// Shares the full substrate with the Π-tree (same pages, WAL, buffer pool,
/// latches, locks), so throughput differences isolate the protocol.
///
/// Limitation (by design, documented for fairness): record undo is
/// page-oriented but the baseline implements no move locks, so it is only
/// abort-safe for transactions whose updates are not moved by a later split
/// before commit; benchmarks use single-operation transactions.
class LcBTree {
 public:
  LcBTree(EngineContext* ctx, PageId root);
  LcBTree(const LcBTree&) = delete;
  LcBTree& operator=(const LcBTree&) = delete;

  /// Formats `root` as an empty leaf root (atomic action).
  static Status Create(EngineContext* ctx, PageId root);

  Status Insert(Transaction* txn, const Slice& key, const Slice& value);
  Status Get(Transaction* txn, const Slice& key, std::string* value);
  Status Delete(Transaction* txn, const Slice& key);
  Status Scan(Transaction* txn, const Slice& start, size_t limit,
              std::vector<NodeEntry>* out);

  PageId root() const { return root_; }
  const LcBTreeStats& stats() const { return stats_; }

 private:
  /// Descends with X latch coupling, retaining latches on unsafe ancestors.
  /// On return `path->back()` is the leaf; all handles in `path` are
  /// X-latched.
  Status DescendForWrite(const Slice& key, size_t incoming_bytes,
                         std::vector<PageHandle>* path);

  /// Splits the leaf at path->back(), propagating up through the retained
  /// ancestors; all within one atomic action. Releases nothing.
  Status SplitPath(std::vector<PageHandle>* path, const Slice& key);

  void ReleasePath(std::vector<PageHandle>* path);

  EngineContext* const ctx_;
  const PageId root_;
  mutable LcBTreeStats stats_;
};

}  // namespace pitree

#endif  // PITREE_BASELINE_LC_BTREE_H_
