// Tests for the TSB-tree instantiation of the Π-tree (paper §2.2.2, Fig. 1).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "db/database.h"
#include "env/sim_env.h"

namespace pitree {
namespace {

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "key%06d", i);
  return buf;
}

class TsbTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Options opts;
    opts.buffer_pool_pages = 2048;
    ASSERT_TRUE(Database::Open(opts, &env_, "db", &db_).ok());
    ASSERT_TRUE(db_->CreateTsbIndex("versions", &tree_).ok());
  }

  Status PutOne(const std::string& k, const std::string& v, TsbTime t) {
    Transaction* txn = db_->Begin();
    Status s = tree_->Put(txn, k, v, t);
    if (s.ok()) return db_->Commit(txn);
    (void)db_->Abort(txn);
    return s;
  }

  Status EraseOne(const std::string& k, TsbTime t) {
    Transaction* txn = db_->Begin();
    Status s = tree_->Erase(txn, k, t);
    if (s.ok()) return db_->Commit(txn);
    (void)db_->Abort(txn);
    return s;
  }

  Status GetAsOf(const std::string& k, TsbTime t, std::string* v) {
    Transaction* txn = db_->Begin();
    Status s = tree_->GetAsOf(txn, k, t, v);
    (void)db_->Commit(txn);
    return s;
  }

  SimEnv env_;
  std::unique_ptr<Database> db_;
  TsbTree* tree_ = nullptr;
};

TEST_F(TsbTreeTest, CompositeKeyRoundTripAndOrdering) {
  std::string a = TsbTree::CompositeKey("alpha", 5);
  std::string b = TsbTree::CompositeKey("alpha", 6);
  std::string c = TsbTree::CompositeKey("beta", 1);
  EXPECT_LT(a, b);  // versions of a key sort by time
  EXPECT_LT(b, c);  // different keys sort by key
  Slice key;
  TsbTime t;
  ASSERT_TRUE(TsbTree::SplitComposite(a, &key, &t));
  EXPECT_EQ(key.ToString(), "alpha");
  EXPECT_EQ(t, 5u);
}

TEST_F(TsbTreeTest, PutGetCurrentVersion) {
  ASSERT_TRUE(PutOne("k", "v1", tree_->Now()).ok());
  std::string v;
  ASSERT_TRUE(GetAsOf("k", kTsbTimeMax, &v).ok());
  EXPECT_EQ(v, "v1");
}

TEST_F(TsbTreeTest, AsOfQueriesSeeTheRightVersion) {
  TsbTime t1 = tree_->Now();
  ASSERT_TRUE(PutOne("k", "v1", t1).ok());
  TsbTime t2 = tree_->Now();
  ASSERT_TRUE(PutOne("k", "v2", t2).ok());
  TsbTime t3 = tree_->Now();
  ASSERT_TRUE(PutOne("k", "v3", t3).ok());

  std::string v;
  ASSERT_TRUE(GetAsOf("k", t1, &v).ok());
  EXPECT_EQ(v, "v1");
  ASSERT_TRUE(GetAsOf("k", t2, &v).ok());
  EXPECT_EQ(v, "v2");
  ASSERT_TRUE(GetAsOf("k", t3 + 100, &v).ok());
  EXPECT_EQ(v, "v3");
  EXPECT_TRUE(GetAsOf("k", t1 - 1, &v).IsNotFound());
}

TEST_F(TsbTreeTest, TombstonesHideAndHistoryRemains) {
  TsbTime t1 = tree_->Now();
  ASSERT_TRUE(PutOne("k", "alive", t1).ok());
  TsbTime t2 = tree_->Now();
  ASSERT_TRUE(EraseOne("k", t2).ok());
  std::string v;
  EXPECT_TRUE(GetAsOf("k", t2, &v).IsNotFound());
  ASSERT_TRUE(GetAsOf("k", t1, &v).ok());
  EXPECT_EQ(v, "alive");
}

TEST_F(TsbTreeTest, NonMonotonicVersionRejected) {
  ASSERT_TRUE(PutOne("k", "v", 100).ok());
  EXPECT_TRUE(PutOne("k", "older", 50).IsInvalidArgument());
  EXPECT_TRUE(PutOne("k", "same", 100).IsInvalidArgument());
  EXPECT_TRUE(PutOne("k", "newer", 101).ok());
}

TEST_F(TsbTreeTest, InvalidKeysRejected) {
  Transaction* txn = db_->Begin();
  EXPECT_TRUE(tree_->Put(txn, "", "v", 1).IsInvalidArgument());
  EXPECT_TRUE(tree_->Put(txn, Slice("a\0b", 3), "v", 1).IsInvalidArgument());
  EXPECT_TRUE(tree_->Put(txn, "\x01H", "v", 1).IsInvalidArgument());
  (void)db_->Abort(txn);
}

TEST_F(TsbTreeTest, UpdateHeavyWorkloadForcesTimeSplits) {
  // Few keys, many versions: nodes fill with dead versions, so the split
  // policy chooses time splits, creating history chains (Figure 1 left).
  std::string value(200, 'v');
  for (int round = 0; round < 120; ++round) {
    for (int k = 0; k < 8; ++k) {
      ASSERT_TRUE(PutOne(Key(k), value + std::to_string(round),
                         tree_->Now())
                      .ok())
          << round << "/" << k;
    }
  }
  EXPECT_GT(tree_->stats().time_splits.load(), 0u);
  std::string report;
  ASSERT_TRUE(tree_->CheckWellFormed(&report).ok()) << report;
  // Every key's current version is the last round's.
  std::string v;
  for (int k = 0; k < 8; ++k) {
    ASSERT_TRUE(GetAsOf(Key(k), kTsbTimeMax, &v).ok());
    EXPECT_EQ(v, value + "119");
  }
}

TEST_F(TsbTreeTest, InsertHeavyWorkloadForcesKeySplits) {
  // Many distinct keys, one version each: splits go by key (Figure 1 right).
  std::string value(120, 'v');
  for (int i = 0; i < 1500; ++i) {
    ASSERT_TRUE(PutOne(Key(i), value, tree_->Now()).ok()) << i;
  }
  EXPECT_GT(tree_->stats().key_splits.load(), 3u);
  std::string report;
  ASSERT_TRUE(tree_->CheckWellFormed(&report).ok()) << report;
  std::string v;
  for (int i = 0; i < 1500; i += 83) {
    ASSERT_TRUE(GetAsOf(Key(i), kTsbTimeMax, &v).ok()) << i;
  }
}

TEST_F(TsbTreeTest, HistoryQueriesAfterTimeSplitsCrossHistoryChain) {
  std::string value(300, 'h');
  std::map<int, TsbTime> round_times;
  for (int round = 0; round < 150; ++round) {
    TsbTime t = tree_->Now();
    round_times[round] = t;
    for (int k = 0; k < 5; ++k) {
      ASSERT_TRUE(PutOne(Key(k), value + std::to_string(round), t + 0).ok());
    }
    // Advance the clock between rounds so versions are distinguishable.
    tree_->Now();
  }
  ASSERT_GT(tree_->stats().time_splits.load(), 0u);
  // As-of queries at old times must traverse history sibling pointers.
  uint64_t hops_before = tree_->stats().history_hops.load();
  std::string v;
  ASSERT_TRUE(GetAsOf(Key(2), round_times[3], &v).ok());
  EXPECT_EQ(v, value + "3");
  ASSERT_TRUE(GetAsOf(Key(2), round_times[80], &v).ok());
  EXPECT_EQ(v, value + "80");
  EXPECT_GT(tree_->stats().history_hops.load(), hops_before);
}

TEST_F(TsbTreeTest, FullVersionHistoryEnumeration) {
  std::vector<TsbTime> times;
  for (int i = 0; i < 40; ++i) {
    TsbTime t = tree_->Now();
    times.push_back(t);
    ASSERT_TRUE(PutOne("k", "v" + std::to_string(i), t).ok());
  }
  // Pad the node with other keys' versions to trigger time splits.
  std::string pad(400, 'p');
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(PutOne(Key(i % 10), pad, tree_->Now()).ok());
  }
  Transaction* txn = db_->Begin();
  std::vector<TsbVersion> versions;
  ASSERT_TRUE(tree_->History(txn, "k", &versions).ok());
  (void)db_->Commit(txn);
  ASSERT_EQ(versions.size(), 40u);
  // Newest first, exact values.
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(versions[i].time, times[39 - i]);
    EXPECT_EQ(versions[i].value, "v" + std::to_string(39 - i));
    EXPECT_FALSE(versions[i].deleted);
  }
}

TEST_F(TsbTreeTest, RandomizedModelCheckAgainstVersionMap) {
  Random rnd(77);
  // model[key] = vector of (time, value-or-tombstone)
  std::map<std::string, std::vector<std::pair<TsbTime, std::string>>> model;
  std::string tomb = "\x00";
  for (int step = 0; step < 2500; ++step) {
    std::string key = Key(static_cast<int>(rnd.Uniform(60)));
    TsbTime t = tree_->Now();
    if (rnd.OneIn(5)) {
      if (EraseOne(key, t).ok()) {
        model[key].emplace_back(t, tomb);
      }
    } else {
      std::string value(1 + rnd.Uniform(150), 'a' + step % 26);
      if (PutOne(key, value, t).ok()) {
        model[key].emplace_back(t, value);
      }
    }
  }
  std::string report;
  ASSERT_TRUE(tree_->CheckWellFormed(&report).ok()) << report;
  // Probe random (key, time) points against the model.
  for (int probe = 0; probe < 2000; ++probe) {
    std::string key = Key(static_cast<int>(rnd.Uniform(60)));
    TsbTime t = 1 + rnd.Uniform(tree_->Now());
    const auto& versions = model[key];
    const std::string* expect = nullptr;
    for (const auto& [vt, val] : versions) {
      if (vt <= t) expect = &val;
    }
    std::string v;
    Status s = GetAsOf(key, t, &v);
    if (expect == nullptr || *expect == tomb) {
      EXPECT_TRUE(s.IsNotFound()) << key << "@" << t;
    } else {
      ASSERT_TRUE(s.ok()) << key << "@" << t;
      EXPECT_EQ(v, *expect);
    }
  }
}

TEST_F(TsbTreeTest, AbortRemovesUncommittedVersions) {
  ASSERT_TRUE(PutOne("k", "committed", 10).ok());
  Transaction* txn = db_->Begin();
  ASSERT_TRUE(tree_->Put(txn, "k", "uncommitted", 20).ok());
  ASSERT_TRUE(tree_->Put(txn, "fresh", "gone", 21).ok());
  ASSERT_TRUE(db_->Abort(txn).ok());
  std::string v;
  ASSERT_TRUE(GetAsOf("k", 100, &v).ok());
  EXPECT_EQ(v, "committed");
  EXPECT_TRUE(GetAsOf("fresh", 100, &v).IsNotFound());
}

TEST_F(TsbTreeTest, StructureDumpShowsHistoryAndKeySiblings) {
  std::string value(300, 'x');
  for (int round = 0; round < 100; ++round) {
    for (int k = 0; k < 6; ++k) {
      ASSERT_TRUE(PutOne(Key(k), value, tree_->Now()).ok());
    }
  }
  for (int i = 100; i < 600; ++i) {
    ASSERT_TRUE(PutOne(Key(i), value, tree_->Now()).ok());
  }
  std::string dump;
  ASSERT_TRUE(tree_->DumpStructure(&dump).ok());
  EXPECT_NE(dump.find("current node"), std::string::npos);
  EXPECT_NE(dump.find("history node"), std::string::npos);
}

TEST_F(TsbTreeTest, SurvivesCrashAndRecovery) {
  TsbTime t1 = 0;
  {
    std::string value(150, 'r');
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(PutOne(Key(i), value, tree_->Now()).ok());
    }
    t1 = tree_->Now();
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(PutOne(Key(i), "updated", tree_->Now()).ok());
    }
    env_.Crash();
    db_.release();  // abandoned, as a crash would
  }
  std::unique_ptr<Database> db2;
  Options opts;
  ASSERT_TRUE(Database::Open(opts, &env_, "db", &db2).ok());
  TsbTree* tree2;
  ASSERT_TRUE(db2->GetTsbIndex("versions", &tree2).ok());
  std::string report;
  ASSERT_TRUE(tree2->CheckWellFormed(&report).ok()) << report;
  Transaction* txn = db2->Begin();
  std::string v;
  ASSERT_TRUE(tree2->GetAsOf(txn, Key(10), kTsbTimeMax, &v).ok());
  EXPECT_EQ(v, "updated");
  ASSERT_TRUE(tree2->GetAsOf(txn, Key(10), t1, &v).ok());
  EXPECT_EQ(v.size(), 150u);
  (void)db2->Commit(txn);
}

}  // namespace
}  // namespace pitree
