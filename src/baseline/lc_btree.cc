// lint:allow-naked-latch -- the lock-coupling baseline deliberately calls
// Latch::Acquire* inline: its whole point is the textbook coupling protocol,
// and funnelling it through a helper would obscure the comparison (§7).
#include "baseline/lc_btree.h"

#include <cassert>
#include <map>

#include "common/thread_annotations.h"
#include "engine/log_apply.h"
#include "engine/page_alloc.h"
#include "recovery/recovery_manager.h"
#include "txn/lock_manager.h"
#include "txn/txn_manager.h"
#include "wal/wal_manager.h"

namespace pitree {

namespace {
// A node is "safe" for an insert of `bytes` if it cannot split: classic
// conservative test.
bool SafeForInsert(const NodeRef& node, size_t bytes) {
  // Generous margin: a propagated separator (key + index term + slot) must
  // always fit in a "safe" ancestor regardless of the record's value size.
  return node.FreeSpace() >= bytes + 64;
}
}  // namespace

LcBTree::LcBTree(EngineContext* ctx, PageId root) : ctx_(ctx), root_(root) {}

// lint:tsa-escape -- bootstrap/recovery latches pages across helper
// calls and error paths; checked by the runtime checker and
// tools/analyze.
Status LcBTree::Create(EngineContext* ctx, PageId root)
    NO_THREAD_SAFETY_ANALYSIS {
  Transaction* action = ctx->txns->Begin(/*is_system=*/true);
  PageHandle h;
  Status s = ctx->pool->FetchPageZeroed(root, &h);
  if (!s.ok()) {
    (void)ctx->txns->Abort(action);  // first error wins
    return s;
  }
  h.latch().AcquireX();
  PageInitHeader(h.data(), root, PageType::kTreeNode);
  s = LogAndApply(ctx, action, h, PageOp::kNodeFormat,
                  NodeRef::FormatPayload(0, kNodeFlagRoot,
                                         kBoundLowNegInf | kBoundHighPosInf,
                                         Slice(), Slice(), kInvalidPageId),
                  PageOp::kNone, "");
  h.latch().ReleaseX();
  h.Reset();
  if (!s.ok()) {
    (void)ctx->txns->Abort(action);  // first error wins
    return s;
  }
  return ctx->txns->Commit(action);
}

// lint:tsa-escape -- latch spans cross helper boundaries (the descent
// acquires, this function releases); checked by the runtime checker and
// tools/analyze.
void LcBTree::ReleasePath(std::vector<PageHandle>* path)
    NO_THREAD_SAFETY_ANALYSIS {
  for (auto it = path->rbegin(); it != path->rend(); ++it) {
    it->latch().ReleaseX();
    it->Reset();
  }
  path->clear();
}

// lint:tsa-escape -- hands latched pages across the call boundary (§4.1
// crabbing); the protocol is enforced by the runtime checker and
// tools/analyze, not the intraprocedural static analysis.
Status LcBTree::DescendForWrite(const Slice& key, size_t incoming_bytes,
                                std::vector<PageHandle>* path)
    NO_THREAD_SAFETY_ANALYSIS {
  path->clear();
  PageHandle cur;
  PITREE_RETURN_IF_ERROR(ctx_->pool->FetchPage(root_, &cur));
  cur.latch().AcquireX();
  for (;;) {
    NodeRef node(cur.data());
    if (node.is_leaf()) {
      path->push_back(std::move(cur));
      return Status::OK();
    }
    int slot = node.FindChildSlot(key);
    if (slot < 0) {
      cur.latch().ReleaseX();
      ReleasePath(path);
      return Status::Corruption("lc-btree: no child covers key");
    }
    IndexTerm term;
    if (!DecodeIndexTerm(node.EntryValue(slot), &term)) {
      cur.latch().ReleaseX();
      ReleasePath(path);
      return Status::Corruption("lc-btree: bad index term");
    }
    PageHandle child;
    Status s = ctx_->pool->FetchPage(term.child, &child);
    if (!s.ok()) {
      cur.latch().ReleaseX();
      ReleasePath(path);
      return s;
    }
    child.latch().AcquireX();
    NodeRef cnode(child.data());
    if (SafeForInsert(cnode, incoming_bytes)) {
      // Safe child: the split cannot propagate here — drop every ancestor.
      cur.latch().ReleaseX();
      cur.Reset();
      ReleasePath(path);
    } else {
      stats_.retained_ancestors.fetch_add(1, std::memory_order_relaxed);
      path->push_back(std::move(cur));
    }
    cur = std::move(child);
  }
}

// lint:tsa-escape -- atomic-action SMO: latches flow across helpers and
// error paths; checked by the runtime checker and tools/analyze.
Status LcBTree::SplitPath(std::vector<PageHandle>* path, const Slice& key)
    NO_THREAD_SAFETY_ANALYSIS {
  // All handles X-latched; path->front() is the deepest retained unsafe
  // ancestor (or the leaf itself), path->back() the leaf. Split bottom-up
  // inside one atomic action while the entire path stays latched — this is
  // precisely the serialization the Π-tree decomposition removes.
  Transaction* action = ctx_->txns->Begin(/*is_system=*/true);
  std::map<PageId, PageHandle*> pages;
  for (auto& h : *path) pages[h.id()] = &h;

  Status s;
  for (size_t i = path->size(); i-- > 0;) {
    PageHandle& h = (*path)[i];
    NodeRef node(h.data());
    if (node.is_root()) {
      // Same mechanics as the Π-tree root grow (immortal root page):
      // move contents to two children, bump the level.
      int split_slot = node.entry_count() / 2;
      if (split_slot < 1) {
        s = Status::NoSpace("root too small to grow");
        break;
      }
      std::string split_key = node.EntryKey(split_slot).ToString();
      std::vector<NodeEntry> all = node.AllEntries();
      std::vector<NodeEntry> lower(all.begin(), all.begin() + split_slot);
      std::vector<NodeEntry> upper(all.begin() + split_slot, all.end());
      std::string image = node.ImagePayload();
      uint8_t old_level = node.level();
      PageId bpid, cpid;
      s = EngineAllocPage(ctx_, action, &bpid);
      if (s.ok()) s = EngineAllocPage(ctx_, action, &cpid);
      if (!s.ok()) break;
      PageHandle bh, ch;
      s = ctx_->pool->FetchPageZeroed(bpid, &bh);
      if (s.ok()) s = ctx_->pool->FetchPageZeroed(cpid, &ch);
      if (!s.ok()) break;
      bh.latch().AcquireX();
      ch.latch().AcquireX();
      PageInitHeader(bh.data(), bpid, PageType::kTreeNode);
      PageInitHeader(ch.data(), cpid, PageType::kTreeNode);
      s = LogAndApply(ctx_, action, bh, PageOp::kNodeFormat,
                      NodeRef::FormatPayload(old_level, 0, kBoundHighPosInf,
                                             split_key, Slice(),
                                             kInvalidPageId),
                      PageOp::kNone, "");
      if (s.ok()) {
        s = LogAndApply(ctx_, action, bh, PageOp::kNodeBulkLoad,
                        NodeRef::BulkLoadPayload(upper), PageOp::kNone, "");
      }
      if (s.ok()) {
        s = LogAndApply(ctx_, action, ch, PageOp::kNodeFormat,
                        NodeRef::FormatPayload(old_level, 0, kBoundLowNegInf,
                                               Slice(), split_key, bpid),
                        PageOp::kNone, "");
      }
      if (s.ok()) {
        s = LogAndApply(ctx_, action, ch, PageOp::kNodeBulkLoad,
                        NodeRef::BulkLoadPayload(lower), PageOp::kNone, "");
      }
      if (s.ok()) {
        s = LogAndApply(
            ctx_, action, h, PageOp::kNodeFormat,
            NodeRef::FormatPayload(old_level + 1, kNodeFlagRoot,
                                   kBoundLowNegInf | kBoundHighPosInf,
                                   Slice(), Slice(), kInvalidPageId),
            PageOp::kNodeUnsplit, std::move(image));
      }
      if (s.ok()) {
        s = LogAndApply(ctx_, action, h, PageOp::kNodeInsert,
                        NodeRef::InsertPayload(Slice(), EncodeIndexTerm(cpid)),
                        PageOp::kNodeDelete, NodeRef::DeletePayload(Slice()));
      }
      if (s.ok()) {
        s = LogAndApply(ctx_, action, h, PageOp::kNodeInsert,
                        NodeRef::InsertPayload(split_key,
                                               EncodeIndexTerm(bpid)),
                        PageOp::kNodeDelete,
                        NodeRef::DeletePayload(split_key));
      }
      bh.latch().ReleaseX();
      ch.latch().ReleaseX();
      stats_.root_grows.fetch_add(1, std::memory_order_relaxed);
      break;
    }

    // Non-root: split and immediately post the separator into the parent,
    // which is the next retained handle up the path (guaranteed to fit —
    // that is what "unsafe ancestor retention" buys).
    assert(i > 0);
    int split_slot = node.entry_count() / 2;
    if (split_slot < 1) {
      s = Status::NoSpace("node too small to split");
      break;
    }
    std::string split_key = node.EntryKey(split_slot).ToString();
    std::vector<NodeEntry> moved = node.EntriesFrom(split_key);
    std::string image = node.ImagePayload();
    PageId bpid;
    s = EngineAllocPage(ctx_, action, &bpid);
    if (!s.ok()) break;
    PageHandle bh;
    s = ctx_->pool->FetchPageZeroed(bpid, &bh);
    if (!s.ok()) break;
    bh.latch().AcquireX();
    PageInitHeader(bh.data(), bpid, PageType::kTreeNode);
    uint8_t bound = node.high_is_pos_inf() ? kBoundHighPosInf : 0;
    std::string high =
        node.high_is_pos_inf() ? std::string() : node.high_key().ToString();
    s = LogAndApply(ctx_, action, bh, PageOp::kNodeFormat,
                    NodeRef::FormatPayload(node.level(), 0, bound, split_key,
                                           high, node.right_sibling()),
                    PageOp::kNone, "");
    if (s.ok()) {
      s = LogAndApply(ctx_, action, bh, PageOp::kNodeBulkLoad,
                      NodeRef::BulkLoadPayload(moved), PageOp::kNone, "");
    }
    if (s.ok()) {
      s = LogAndApply(ctx_, action, h, PageOp::kNodeSplitApply,
                      NodeRef::SplitPayload(split_key, bpid),
                      PageOp::kNodeUnsplit, std::move(image));
    }
    if (s.ok()) {
      PageHandle& parent = (*path)[i - 1];
      s = LogAndApply(ctx_, action, parent, PageOp::kNodeInsert,
                      NodeRef::InsertPayload(split_key,
                                             EncodeIndexTerm(bpid)),
                      PageOp::kNodeDelete, NodeRef::DeletePayload(split_key));
    }
    bh.latch().ReleaseX();
    if (!s.ok()) break;
    stats_.splits.fetch_add(1, std::memory_order_relaxed);
    // The parent absorbed one separator; if it is still over-full the loop
    // continues upward (it was retained precisely because it was unsafe).
    NodeRef parent_ref((*path)[i - 1].data());
    if (SafeForInsert(parent_ref, 0)) break;
  }

  if (!s.ok()) {
    // Roll back the whole action with our latched pages.
    if (action->last_lsn != kInvalidLsn) {
      LogActionAbort(ctx_, action);
      (void)ctx_->recovery->RollbackTxnWithPages(action, pages);
      LogActionEnd(ctx_, action);
    }
    ctx_->locks->ReleaseAll(action);
    ctx_->txns->Discard(action);
    return s;
  }
  return ctx_->txns->Commit(action);
}

Status LcBTree::Insert(Transaction* txn, const Slice& key,
                       const Slice& value) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  for (;;) {
    std::vector<PageHandle> path;
    PITREE_RETURN_IF_ERROR(
        DescendForWrite(key, key.size() + value.size() + 8, &path));
    PageHandle& leaf = path.back();

    // Record lock: to honor the No-Wait Rule the whole X-latched path must
    // be dropped before waiting, then the operation restarts.
    std::string name = RecordLockName(root_, key);
    Status s = ctx_->locks->Lock(txn, name, LockMode::kX, /*wait=*/false);
    if (s.IsBusy()) {
      ReleasePath(&path);
      PITREE_RETURN_IF_ERROR(ctx_->locks->Lock(txn, name, LockMode::kX,
                                               /*wait=*/true));
      stats_.restarts.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!s.ok()) return s;

    NodeRef node(leaf.data());
    bool found;
    node.FindSlot(key, &found);
    if (found) {
      ReleasePath(&path);
      return Status::InvalidArgument("key already exists");
    }
    if (!node.CanFit(key.size(), value.size())) {
      s = SplitPath(&path, key);
      ReleasePath(&path);
      PITREE_RETURN_IF_ERROR(s);
      stats_.restarts.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    s = LogAndApply(ctx_, txn, leaf, PageOp::kNodeInsert,
                    NodeRef::InsertPayload(key, value), PageOp::kNodeDelete,
                    NodeRef::DeletePayload(key));
    ReleasePath(&path);
    return s;
  }
}

// lint:tsa-escape -- latch spans cross helper boundaries (the descent
// acquires, this function releases); checked by the runtime checker and
// tools/analyze.
Status LcBTree::Get(Transaction* txn, const Slice& key, std::string* value)
    NO_THREAD_SAFETY_ANALYSIS {
  if (key.empty()) return Status::InvalidArgument("empty key");
  for (;;) {
    // Readers use S latch coupling top-down — one coupled pair at a time.
    PageHandle cur;
    PITREE_RETURN_IF_ERROR(ctx_->pool->FetchPage(root_, &cur));
    cur.latch().AcquireS();
    for (;;) {
      NodeRef node(cur.data());
      if (node.is_leaf()) break;
      int slot = node.FindChildSlot(key);
      IndexTerm term;
      if (slot < 0 || !DecodeIndexTerm(node.EntryValue(slot), &term)) {
        cur.latch().ReleaseS();
        return Status::Corruption("lc-btree: bad descent");
      }
      PageHandle child;
      PITREE_RETURN_IF_ERROR(ctx_->pool->FetchPage(term.child, &child));
      child.latch().AcquireS();
      cur.latch().ReleaseS();
      cur = std::move(child);
    }
    std::string name = RecordLockName(root_, key);
    Status s = ctx_->locks->Lock(txn, name, LockMode::kS, /*wait=*/false);
    if (s.IsBusy()) {
      cur.latch().ReleaseS();
      cur.Reset();
      PITREE_RETURN_IF_ERROR(ctx_->locks->Lock(txn, name, LockMode::kS,
                                               /*wait=*/true));
      stats_.restarts.fetch_add(1, std::memory_order_relaxed);
      continue;  // restart: the leaf may have split while we waited
    }
    if (!s.ok()) return s;
    NodeRef node(cur.data());
    bool found;
    int slot = node.FindSlot(key, &found);
    Status result;
    if (found) {
      if (value != nullptr) *value = node.EntryValue(slot).ToString();
      result = Status::OK();
    } else {
      result = Status::NotFound("key absent");
    }
    cur.latch().ReleaseS();
    return result;
  }
}

Status LcBTree::Delete(Transaction* txn, const Slice& key) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  for (;;) {
    std::vector<PageHandle> path;
    PITREE_RETURN_IF_ERROR(DescendForWrite(key, 0, &path));
    PageHandle& leaf = path.back();
    std::string name = RecordLockName(root_, key);
    Status s = ctx_->locks->Lock(txn, name, LockMode::kX, /*wait=*/false);
    if (s.IsBusy()) {
      ReleasePath(&path);
      PITREE_RETURN_IF_ERROR(ctx_->locks->Lock(txn, name, LockMode::kX,
                                               /*wait=*/true));
      continue;
    }
    if (!s.ok()) return s;
    NodeRef node(leaf.data());
    bool found;
    int slot = node.FindSlot(key, &found);
    if (!found) {
      ReleasePath(&path);
      return Status::NotFound("key absent");
    }
    std::string old_value = node.EntryValue(slot).ToString();
    s = LogAndApply(ctx_, txn, leaf, PageOp::kNodeDelete,
                    NodeRef::DeletePayload(key), PageOp::kNodeInsert,
                    NodeRef::InsertPayload(key, old_value));
    ReleasePath(&path);
    return s;
  }
}

// lint:tsa-escape -- latch spans cross helper boundaries (the descent
// acquires, this function releases); checked by the runtime checker and
// tools/analyze.
Status LcBTree::Scan(Transaction* txn, const Slice& start, size_t limit,
                     std::vector<NodeEntry>* out) NO_THREAD_SAFETY_ANALYSIS {
  out->clear();
  PageHandle cur;
  PITREE_RETURN_IF_ERROR(ctx_->pool->FetchPage(root_, &cur));
  cur.latch().AcquireS();
  for (;;) {
    NodeRef node(cur.data());
    if (node.is_leaf()) break;
    int slot = node.FindChildSlot(start);
    if (slot < 0) slot = 0;
    IndexTerm term;
    if (!DecodeIndexTerm(node.EntryValue(slot), &term)) {
      cur.latch().ReleaseS();
      return Status::Corruption("lc-btree: bad index term");
    }
    PageHandle child;
    PITREE_RETURN_IF_ERROR(ctx_->pool->FetchPage(term.child, &child));
    child.latch().AcquireS();
    cur.latch().ReleaseS();
    cur = std::move(child);
  }
  std::string resume = start.ToString();
  while (out->size() < limit) {
    NodeRef node(cur.data());
    bool found;
    int slot = node.FindSlot(resume, &found);
    for (int i = slot; i < node.entry_count() && out->size() < limit; ++i) {
      out->push_back(
          {node.EntryKey(i).ToString(), node.EntryValue(i).ToString()});
    }
    PageId next = node.right_sibling();  // leaf chain maintained by splits
    if (out->size() >= limit || next == kInvalidPageId) break;
    resume = node.high_is_pos_inf() ? resume : node.high_key().ToString();
    PageHandle nh;
    PITREE_RETURN_IF_ERROR(ctx_->pool->FetchPage(next, &nh));
    nh.latch().AcquireS();
    cur.latch().ReleaseS();
    cur = std::move(nh);
  }
  cur.latch().ReleaseS();
  return Status::OK();
}

}  // namespace pitree
