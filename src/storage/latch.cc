#include "storage/latch.h"

#include <cassert>

namespace pitree {

void Latch::AcquireS() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return SOk(); });
  ++readers_;
}

void Latch::AcquireU() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return UOk(); });
  u_held_ = true;
}

void Latch::AcquireX() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return XOk(); });
  x_held_ = true;
}

bool Latch::TryAcquireS() {
  std::lock_guard<std::mutex> lk(mu_);
  if (!SOk()) return false;
  ++readers_;
  return true;
}

bool Latch::TryAcquireU() {
  std::lock_guard<std::mutex> lk(mu_);
  if (!UOk()) return false;
  u_held_ = true;
  return true;
}

bool Latch::TryAcquireX() {
  std::lock_guard<std::mutex> lk(mu_);
  if (!XOk()) return false;
  x_held_ = true;
  return true;
}

void Latch::ReleaseS() {
  std::lock_guard<std::mutex> lk(mu_);
  assert(readers_ > 0);
  --readers_;
  cv_.notify_all();
}

void Latch::ReleaseU() {
  std::lock_guard<std::mutex> lk(mu_);
  assert(u_held_);
  u_held_ = false;
  cv_.notify_all();
}

void Latch::ReleaseX() {
  std::lock_guard<std::mutex> lk(mu_);
  assert(x_held_);
  x_held_ = false;
  cv_.notify_all();
}

void Latch::PromoteUToX() {
  std::unique_lock<std::mutex> lk(mu_);
  assert(u_held_ && !promoting_);
  promoting_ = true;  // blocks new readers so the drain terminates
  cv_.wait(lk, [&] { return readers_ == 0; });
  u_held_ = false;
  promoting_ = false;
  x_held_ = true;
}

void Latch::DemoteXToU() {
  std::lock_guard<std::mutex> lk(mu_);
  assert(x_held_);
  x_held_ = false;
  u_held_ = true;
  cv_.notify_all();
}

void Latch::Release(LatchMode mode) {
  switch (mode) {
    case LatchMode::kShared:
      ReleaseS();
      break;
    case LatchMode::kUpdate:
      ReleaseU();
      break;
    case LatchMode::kExclusive:
      ReleaseX();
      break;
  }
}

}  // namespace pitree
