#include "wal/log_reader.h"

#include <memory>

#include "common/coding.h"
#include "common/crc32.h"

namespace pitree {

Status LogReader::ReadNext(LogRecord* rec) {
  char header[8];
  Slice result;
  PITREE_RETURN_IF_ERROR(file_->Read(offset_, sizeof(header), &result, header));
  if (result.size() < sizeof(header)) {
    return Status::NotFound("end of log");
  }
  uint32_t expected_crc = UnmaskCrc(DecodeFixed32(result.data()));
  uint32_t len = DecodeFixed32(result.data() + 4);
  if (len == 0 || len > (64u << 20)) {
    return Status::NotFound("end of log (implausible frame)");
  }
  std::string buf(len, '\0');
  PITREE_RETURN_IF_ERROR(
      file_->Read(offset_ + sizeof(header), len, &result, buf.data()));
  if (result.size() < len) {
    return Status::NotFound("end of log (short payload)");
  }
  if (Crc32c(result.data(), len) != expected_crc) {
    return Status::NotFound("end of log (crc mismatch)");
  }
  Status s = rec->DecodeFrom(Slice(result.data(), len));
  if (!s.ok()) return s;
  rec->lsn = offset_;
  offset_ += sizeof(header) + len;
  rec->next_lsn = offset_;
  return Status::OK();
}

}  // namespace pitree
