#ifndef PITREE_COMMON_OPTIONS_H_
#define PITREE_COMMON_OPTIONS_H_

#include <cstddef>

namespace pitree {

/// Engine-wide configuration. The flags select between the regimes the
/// paper analyzes, so experiments can measure each choice.
struct Options {
  /// Buffer pool capacity in pages.
  size_t buffer_pool_pages = 512;

  /// CP vs. CNS (§5.2). When false, node consolidation never runs; the tree
  /// uses the Consolidation-Not-Supported invariant: single-latch traversal,
  /// no latch coupling, saved paths trusted without re-verification of node
  /// existence.
  bool consolidation_enabled = true;

  /// §5.2.2 strategy (a) vs (b). When true, de-allocation bumps the victim
  /// node's state identifier (logs an update against it) so re-traversals
  /// can restart from the deepest unchanged saved-path node; when false,
  /// de-allocation leaves the node's state id alone and re-traversals
  /// restart from the (immortal, never-moving) root.
  bool dealloc_is_node_update = false;

  /// §4.2: when true the recovery method is page-oriented UNDO — data-node
  /// splits that move uncommitted records run inside the updating
  /// transaction under a move lock held to end of transaction, and index
  /// postings for them are deferred until commit. When false, undo is
  /// logical and every structure change is an independent atomic action.
  bool page_oriented_undo = false;

  /// When true, completing atomic actions (index-term postings and
  /// consolidations detected during traversals, §5.1) run synchronously at
  /// the end of the triggering operation; when false they are queued for
  /// the background completion thread.
  bool inline_completion = true;

  /// A node whose live payload falls below this percentage of usable space
  /// is a consolidation candidate (§3.3).
  size_t min_node_utilization_pct = 20;

  /// Fraction of entries delegated on a split, in percent of the slot count
  /// (50 = split at the median).
  size_t split_point_pct = 50;
};

}  // namespace pitree

#endif  // PITREE_COMMON_OPTIONS_H_
