#ifndef PITREE_COMMON_CODING_H_
#define PITREE_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"

namespace pitree {

// Little-endian fixed-width encoders/decoders plus LEB128 varints and
// length-prefixed strings. All log records and page payloads use these,
// so the on-disk format is platform independent.

inline void EncodeFixed16(char* dst, uint16_t value) {
  memcpy(dst, &value, sizeof(value));  // assumes little-endian host
}
inline void EncodeFixed32(char* dst, uint32_t value) {
  memcpy(dst, &value, sizeof(value));
}
inline void EncodeFixed64(char* dst, uint64_t value) {
  memcpy(dst, &value, sizeof(value));
}

inline uint16_t DecodeFixed16(const char* src) {
  uint16_t v;
  memcpy(&v, src, sizeof(v));
  return v;
}
inline uint32_t DecodeFixed32(const char* src) {
  uint32_t v;
  memcpy(&v, src, sizeof(v));
  return v;
}
inline uint64_t DecodeFixed64(const char* src) {
  uint64_t v;
  memcpy(&v, src, sizeof(v));
  return v;
}

void PutFixed16(std::string* dst, uint16_t value);
void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);

void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);

/// Appends a varint32 length followed by the bytes of `value`.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

/// Each Get* consumes bytes from the front of `input` and returns true on
/// success; on failure `input` is unspecified and false is returned.
bool GetFixed16(Slice* input, uint16_t* value);
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

}  // namespace pitree

#endif  // PITREE_COMMON_CODING_H_
