#ifndef PITREE_STORAGE_EPOCH_H_
#define PITREE_STORAGE_EPOCH_H_

#include <atomic>
#include <cstdint>

namespace pitree {

/// Epoch-based reclamation for optimistic (unpinned, unlatched) page
/// readers.
///
/// The problem: BufferPool::FetchOptimistic hands a reader a frame pointer
/// with no pin. The frame's version word catches *logical* staleness — any
/// copy taken before an eviction fails its Validate — but the reader's
/// byte-wise copy must also be *physically* safe: the frame's bytes must
/// not be overwritten with a different page's image while the copy is in
/// flight (the copy would be discarded, but the engine would still be
/// racing a load against a store with no synchronization at all).
///
/// The protocol, a minimal quiescent-state scheme:
///  - Each reader thread owns one cache-line-padded slot (claimed lazily,
///    released at thread exit). Entering a section stores the current
///    global epoch into the slot (seq_cst); leaving stores kIdle.
///  - A reclaimer first marks the frame's version word locked
///    (Latch::TryBeginReclaim, a seq_cst RMW), then bumps the global epoch
///    and waits until every slot is idle or has observed the new epoch
///    (WaitGracePeriod). Sequential consistency gives the Dekker-style
///    guarantee: a reader either sees the locked word at OptimisticBegin
///    (and backs off before touching bytes) or its slot store is visible
///    to the reclaimer's scan (and the reclaimer waits it out). Either
///    way, no reader is mid-copy when the frame's bytes are replaced.
///  - Readers never block inside a section (machine-checked by
///    src/analysis/: no blocking latch/mutex/lock acquire while a section
///    is open), so every grace period terminates after at most one
///    scheduling quantum per active reader.
///
/// One process-wide manager (Global()) serves every pool: thread slots are
/// per-thread, not per-pool, so a thread's slot can never dangle when a
/// pool dies first, and the cross-pool imprecision only makes reclaimers
/// wait for a few foreign readers — bounded, per the no-blocking rule.
class EpochManager {
 public:
  /// Slot value meaning "not in any section".
  static constexpr uint64_t kIdle = ~0ull;
  /// Concurrent reader-thread bound; a thread beyond it simply never gets
  /// a slot and uses the latched path (Enter returns false).
  static constexpr uint32_t kMaxSlots = 256;

  /// The process-wide manager. Leaked deliberately: thread-exit hooks and
  /// crash tests may run sections during static destruction.
  static EpochManager* Global();

  /// Enters an epoch-protected section on this thread; re-entrant. False
  /// when no slot could be claimed — the caller must use the pinned path.
  bool Enter();

  /// Leaves the innermost section; the outermost exit publishes kIdle.
  void Exit();

  /// True while this thread has a section open.
  bool InEpoch() const;

  /// Reclaimer side: advance the global epoch and wait until every slot is
  /// idle or has entered at or after the new epoch. Call after the frame's
  /// version word is locked and before the first byte of the frame is
  /// overwritten. Must not be called from inside a section (it would wait
  /// on its own slot); the analysis checker's no-blocking rule keeps
  /// sections free of every path that reclaims.
  void WaitGracePeriod();

 private:
  EpochManager() = default;

  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdle};
    std::atomic<uint32_t> claimed{0};
  };

  bool ClaimSlot();

  Slot slots_[kMaxSlots];
  std::atomic<uint64_t> global_{1};
  // Highest claimed slot index + 1; bounds the reclaimer's scan.
  std::atomic<uint32_t> high_water_{0};

  friend struct ThreadEpochState;
};

/// RAII section for EpochManager::Global(). `active()` false means slot
/// exhaustion: the guard is a no-op and the caller must take the latched
/// path instead of touching any unpinned frame.
class EpochGuard {
 public:
  EpochGuard() : active_(EpochManager::Global()->Enter()) {}
  ~EpochGuard() {
    if (active_) EpochManager::Global()->Exit();
  }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

  bool active() const { return active_; }

 private:
  bool active_;
};

}  // namespace pitree

#endif  // PITREE_STORAGE_EPOCH_H_
