#include "engine/page_apply.h"

#include "pitree/node_page.h"
#include "storage/space_map.h"

namespace pitree {

Status ApplyAnyRedo(PageOp op, const Slice& payload, char* page) {
  uint8_t code = static_cast<uint8_t>(op);
  if (code >= 1 && code <= 15) {
    return ApplyNodeRedo(op, payload, page);
  }
  if (code >= 16 && code <= 23) {
    return ApplySpaceMapRedo(op, payload, page);
  }
  return Status::Corruption("unknown page op in redo");
}

}  // namespace pitree
