#include "env/env.h"

namespace pitree {

// Env and File are pure interfaces; their out-of-line destructors and any
// shared helpers live here so the vtables have a home translation unit.

}  // namespace pitree
