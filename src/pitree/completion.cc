#include "pitree/completion.h"

namespace pitree {

CompletionQueue::Admit CompletionQueue::Enqueue(CompletionJob job) {
  {
    MutexLock lk(&mu_);
    if (capacity_ != 0 && queue_.size() >= capacity_) {
      // Dropping is safe: the job is a hint, and the next traversal that
      // crosses the still-unposted side pointer re-schedules it (§5.1).
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return Admit::kDropped;
    }
    if (dedup_ && !keys_.insert(DedupKey(job)).second) {
      deduped_.fetch_add(1, std::memory_order_relaxed);
      return Admit::kDuplicate;
    }
    queue_.push_back(std::move(job));
  }
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  cv_.NotifyOne();
  return Admit::kQueued;
}

bool CompletionQueue::PopFrontLocked(CompletionJob* out) {
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  // The dedup window closes at dequeue, not at completion: once execution
  // begins, a freshly detected identical job reflects a *new* observation
  // of the tree and must be admitted again.
  if (dedup_) keys_.erase(DedupKey(*out));
  return true;
}

void CompletionQueue::Drain() {
  for (;;) {
    CompletionJob job;
    {
      MutexLock lk(&mu_);
      if (!PopFrontLocked(&job)) return;
    }
    if (executor_) executor_(job).ok();
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<CompletionJob> CompletionQueue::TakeAll() {
  MutexLock lk(&mu_);
  std::vector<CompletionJob> out(std::make_move_iterator(queue_.begin()),
                                 std::make_move_iterator(queue_.end()));
  queue_.clear();
  keys_.clear();
  return out;
}

size_t CompletionQueue::depth() const {
  MutexLock lk(&mu_);
  return queue_.size();
}

void CompletionQueue::StartBackground() {
  MutexLock lk(&mu_);
  if (worker_running_) return;
  stop_ = false;
  worker_running_ = true;
  worker_ = std::thread([this] { WorkerLoop(); });
}

void CompletionQueue::StopBackground() {
  std::thread worker;
  {
    MutexLock lk(&mu_);
    if (!worker_running_) return;
    stop_ = true;
    worker = std::move(worker_);
    worker_running_ = false;
  }
  cv_.NotifyAll();
  // The worker drains the queue before exiting (see WorkerLoop): a clean
  // stop never discards scheduled completing actions.
  worker.join();
}

void CompletionQueue::WorkerLoop() {
  ReleasableMutexLock lk(&mu_);
  for (;;) {
    // One condition decides everything: sleep only while there is neither
    // work nor a stop request. On stop the loop keeps consuming until the
    // queue is empty, so shutdown drains instead of dropping.
    while (!stop_ && queue_.empty()) cv_.Wait(mu_);
    CompletionJob job;
    if (!PopFrontLocked(&job)) return;  // empty here implies stop_
    lk.Unlock();
    if (executor_) executor_(job).ok();
    executed_.fetch_add(1, std::memory_order_relaxed);
    lk.Lock();
  }
}

}  // namespace pitree
