#ifndef PITREE_TXN_TXN_MANAGER_H_
#define PITREE_TXN_TXN_MANAGER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "txn/lock_manager.h"
#include "txn/transaction.h"
#include "wal/wal_manager.h"

namespace pitree {

class TimestampOracle;

/// Snapshot of one active transaction, for the checkpoint ATT.
struct AttEntry {
  TxnId txn_id;
  bool is_system;
  Lsn last_lsn;
  Lsn undo_next;
  bool aborting;
  /// LSN of the transaction's kBegin record: the oldest record its crash
  /// undo can need, so the WAL truncation floor takes the minimum over
  /// these (recovery/checkpoint.h). 0 is "unknown" and conservatively
  /// pins the floor at the log's start.
  Lsn first_lsn = kInvalidLsn;
};

/// Owns all live transactions and atomic actions.
///
/// Commit policy (§4.3.1):
///  - user transactions force the log through their commit record;
///  - atomic actions are only *relatively durable* — their commit record is
///    appended but not forced; the next user commit (or a WAL-before-data
///    flush) carries it to disk. A crash before that undoes the action,
///    which is correct because nothing durable depended on it.
class TxnManager {
 public:
  TxnManager(WalManager* wal, LockManager* locks)
      : wal_(wal), locks_(locks) {}
  TxnManager(const TxnManager&) = delete;
  TxnManager& operator=(const TxnManager&) = delete;

  /// Handler used to roll back a transaction's log chain (installed by
  /// Database; implemented by RecoveryManager so runtime aborts and crash
  /// undo share one code path).
  using RollbackFn = std::function<Status(Transaction*)>;
  void set_rollback_handler(RollbackFn fn) { rollback_ = std::move(fn); }

  /// MVCC wiring (installed by Database). With an oracle, Commit allocates
  /// a commit timestamp and appends the kCommit record under one mutex —
  /// inside the group-commit pipeline's append stage — so commit-timestamp
  /// order equals LSN order and snapshot visibility equals WAL durability
  /// order; the timestamp is published to snapshots only after the force.
  void set_oracle(TimestampOracle* oracle) { oracle_ = oracle; }

  /// Starts a user transaction (is_system=false) or an atomic action
  /// (is_system=true). The kBegin record is logged lazily on first update,
  /// so read-only work writes nothing.
  Transaction* Begin(bool is_system = false);

  /// Logs the kBegin record if not yet logged. Called by LogAndApply.
  Status EnsureBegun(Transaction* txn);

  /// Commits: logs kCommit; forces the log for user transactions; releases
  /// all locks; destroys the Transaction.
  Status Commit(Transaction* txn);

  /// Aborts: logs kAbort, undoes the chain (CLRs), logs kEnd, releases
  /// locks, destroys the Transaction.
  Status Abort(Transaction* txn);

  /// Registers a transaction reconstructed by recovery analysis (loser).
  /// `first_lsn` is the loser's kBegin LSN (0 if analysis never saw it),
  /// so checkpoints taken while the loser is still active keep the WAL
  /// truncation floor below its undo chain.
  Transaction* AdoptLoser(TxnId id, bool is_system, Lsn last_lsn,
                          Lsn undo_next, Lsn first_lsn = kInvalidLsn);

  /// Destroys a transaction without logging (used by recovery after a
  /// loser's undo completes).
  void Discard(Transaction* txn);

  /// Ensures future ids are greater than `floor` (recovery sets this past
  /// the largest id seen in the log).
  void AdvanceTxnIdFloor(TxnId floor);

  /// ATT snapshot for fuzzy checkpoints.
  std::vector<AttEntry> SnapshotAtt() const;

  size_t active_count() const;

 private:
  WalManager* const wal_;
  LockManager* const locks_;
  RollbackFn rollback_;
  TimestampOracle* oracle_ = nullptr;
  /// Serializes commit-timestamp allocation with the commit-record append.
  /// Append() does no I/O (the group-commit pipeline stages bytes in
  /// memory), so this critical section is a few hundred nanoseconds.
  Mutex commit_order_mu_;

  mutable Mutex mu_;
  std::unordered_map<TxnId, std::unique_ptr<Transaction>> active_
      GUARDED_BY(mu_);
  /// kBegin logged yet?
  std::unordered_map<TxnId, bool> begun_ GUARDED_BY(mu_);
  std::atomic<TxnId> next_id_{1};
};

}  // namespace pitree

#endif  // PITREE_TXN_TXN_MANAGER_H_
