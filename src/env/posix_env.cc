#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <mutex>

#include "env/env.h"

namespace pitree {

namespace {

Status PosixError(const std::string& context, int err) {
  return Status::IOError(context + ": " + strerror(err));
}

class PosixFile : public File {
 public:
  explicit PosixFile(int fd) : fd_(fd) {}
  ~PosixFile() override {
    if (fd_ >= 0) close(fd_);
  }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    ssize_t r = pread(fd_, scratch, n, static_cast<off_t>(offset));
    if (r < 0) return PosixError("pread", errno);
    *result = Slice(scratch, static_cast<size_t>(r));
    return Status::OK();
  }

  Status Write(uint64_t offset, const Slice& data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t w = pwrite(fd_, p, left, static_cast<off_t>(offset));
      if (w < 0) {
        if (errno == EINTR) continue;
        return PosixError("pwrite", errno);
      }
      p += w;
      offset += static_cast<uint64_t>(w);
      left -= static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fdatasync(fd_) != 0) return PosixError("fdatasync", errno);
    return Status::OK();
  }

  uint64_t Size() const override {
    struct stat st;
    if (fstat(fd_, &st) != 0) return 0;
    return static_cast<uint64_t>(st.st_size);
  }

  Status Truncate(uint64_t size) override {
    if (ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return PosixError("ftruncate", errno);
    }
    return Status::OK();
  }

 private:
  int fd_;
};

class PosixEnv : public Env {
 public:
  Status OpenFile(const std::string& name,
                  std::unique_ptr<File>* file) override {
    int fd = open(name.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) return PosixError("open " + name, errno);
    file->reset(new PosixFile(fd));
    return Status::OK();
  }

  bool FileExists(const std::string& name) const override {
    return access(name.c_str(), F_OK) == 0;
  }

  Status DeleteFile(const std::string& name) override {
    if (unlink(name.c_str()) != 0 && errno != ENOENT) {
      return PosixError("unlink " + name, errno);
    }
    return Status::OK();
  }

  Status WriteFileAtomic(const std::string& name, const Slice& data) override {
    std::string tmp = name + ".tmp";
    {
      int fd = open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd < 0) return PosixError("open " + tmp, errno);
      PosixFile f(fd);
      Status s = f.Write(0, data);
      if (s.ok()) s = f.Sync();
      if (!s.ok()) return s;
    }
    if (rename(tmp.c_str(), name.c_str()) != 0) {
      return PosixError("rename " + tmp, errno);
    }
    return Status::OK();
  }

  Status ReadFileToString(const std::string& name, std::string* data) override {
    std::unique_ptr<File> f;
    PITREE_RETURN_IF_ERROR(OpenFile(name, &f));
    uint64_t size = f->Size();
    data->resize(size);
    Slice result;
    PITREE_RETURN_IF_ERROR(f->Read(0, size, &result, data->data()));
    data->resize(result.size());
    return Status::OK();
  }
};

}  // namespace

Env* GetPosixEnv() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

}  // namespace pitree
