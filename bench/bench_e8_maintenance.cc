// Experiment E8 — §5.1: completing atomic actions as schedulable hints.
// The MaintenanceService exploits the hint freedoms (dedup, drop, execute-
// by-anyone) to take posting/consolidation work off the foreground path.
// Under a skewed insert workload (hot subtrees -> repeated detection of the
// same unposted splits) we compare inline completion against background
// pools of 1 and 4 workers: foreground throughput, queue behavior (depth
// high-water, duplicate suppression, drops), and how much completion work
// is left at the end (drain time, side traversals accumulated meanwhile).

#include <atomic>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"

namespace pitree {
namespace bench {
namespace {

constexpr int kThreads = 4;
constexpr uint64_t kPerThread = 6000;
constexpr size_t kValueSize = 150;
constexpr uint64_t kHotBuckets = 48;  // skewed bucket -> shared subtree

struct Config {
  const char* name;
  bool inline_completion;
  size_t workers;
};

struct Result {
  double kops;
  uint64_t max_depth, final_depth;
  double dedup_pct;
  uint64_t dropped;
  uint64_t posts, obsolete, side_traversals;
  double drain_ms;
};

Result RunOnce(const Config& cfg) {
  Options opts;
  opts.inline_completion = cfg.inline_completion;
  opts.maintenance_workers = cfg.workers;
  opts.buffer_pool_pages = 8192;
  BenchDb bdb(opts);
  PiTree* tree = nullptr;
  bdb.db->CreateIndex("t", &tree).ok();

  std::string value(kValueSize, 'v');
  Timer t;
  std::vector<std::thread> threads;
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      Random rnd(1000 + th);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        // Skewed bucket picks the (hot) subtree; the sequence suffix keeps
        // the key unique. Hot subtrees split repeatedly, and every traversal
        // that crosses the same unposted side pointer re-submits the same
        // posting job — the dedup case this experiment is about.
        uint64_t bucket = rnd.Skewed(kHotBuckets);
        uint64_t key = bucket * 1000000 + th * kPerThread + i;
        for (int attempt = 0; attempt < 100; ++attempt) {
          Transaction* txn = bdb.db->Begin();
          Status s = tree->Insert(txn, BenchKey(key), value);
          if (s.ok()) {
            bdb.db->Commit(txn).ok();
            break;
          }
          bdb.db->Abort(txn).ok();
          if (!s.IsBusy() && !s.IsDeadlock()) break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  double secs = t.ElapsedSeconds();

  Result r;
  MaintenanceStats ms = bdb.db->maintenance()->StatsSnapshot();
  r.kops = kThreads * kPerThread / secs / 1e3;
  r.max_depth = ms.max_queue_depth;
  r.final_depth = ms.queue_depth;
  r.dedup_pct = ms.submitted ? 100.0 * ms.deduped / ms.submitted : 0.0;
  r.dropped = ms.dropped;
  r.side_traversals = tree->stats().side_traversals.load();
  Timer dt;
  bdb.db->maintenance()->Drain();
  r.drain_ms = dt.ElapsedMillis();
  r.posts = tree->stats().posts_performed.load();
  r.obsolete = tree->stats().posts_obsolete.load();
  return r;
}

}  // namespace
}  // namespace bench
}  // namespace pitree

int main() {
  using namespace pitree;
  using namespace pitree::bench;
  setvbuf(stdout, nullptr, _IOLBF, 0);
  printf("E8: maintenance service under skewed concurrent inserts (§5.1)\n");
  printf("(%d writer threads x %llu inserts, Zipf-hot buckets)\n\n", kThreads,
         (unsigned long long)kPerThread);

  const Config kConfigs[] = {
      {"inline", true, 1},
      {"background x1", false, 1},
      {"background x4", false, 4},
  };
  PrintRow({"completion", "kops/s", "max_q", "end_q", "dedup%", "dropped",
            "posts", "obsolete", "side_trav", "drain_ms"},
           {16, 9, 8, 7, 8, 9, 8, 10, 11, 10});
  for (const Config& cfg : kConfigs) {
    Result r = RunOnce(cfg);
    PrintRow({cfg.name, Fmt(r.kops, 1), FmtU(r.max_depth), FmtU(r.final_depth),
              Fmt(r.dedup_pct, 1), FmtU(r.dropped), FmtU(r.posts),
              FmtU(r.obsolete), FmtU(r.side_traversals), Fmt(r.drain_ms, 2)},
             {16, 9, 8, 7, 8, 9, 8, 10, 11, 10});
  }
  printf("\nExpected shape: background completion keeps foreground throughput "
         "at or above\ninline while the queue high-water stays bounded "
         "(capacity + dedup); the skewed\nworkload makes dedup%% clearly "
         "positive — repeated detections of the same unposted\nsplit collapse "
         "into one queued hint. With 4 workers the queue drains during the\n"
         "run (small end_q, near-zero drain_ms); obsolete counts verify-step "
         "terminations\n(duplicate or already-posted hints ending harmlessly, "
         "§5.3).\n");
  return 0;
}
