// Snapshot reads racing MVCC writers and the time splits they trigger.
//
// Writers overwrite a small key set with sizeable values so current leaves
// fill with dead versions and time-split continuously (versions migrate to
// historical nodes while readers hold snapshots pointing at them). Readers
// assert snapshot isolation the whole time: every read is repeatable within
// its snapshot, values are never torn or cross-key, and a snapshot pinned
// before the storm still sees the seed data after hundreds of splits.
//
// Run under TSan with the invariant checker ON (the sanitizer CI job) to
// machine-check the claim that the latch-only snapshot path is race-free.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/latch_checker.h"
#include "db/database.h"
#include "env/sim_env.h"

namespace pitree {
namespace {

constexpr int kKeys = 12;
constexpr int kWriters = 3;
constexpr int kReaders = 3;
constexpr int kCommitsPerWriter = 250;

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "key%04d", i);
  return buf;
}

// Self-describing value: readers can detect cross-key mixups and tearing
// without coordinating with writers. Padded so overwrites fill leaves fast.
std::string Value(int key, const std::string& tag) {
  std::string v = Key(key) + "#" + tag;
  v.resize(120, '.');
  return v;
}

class MvccConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Options opts;
    opts.buffer_pool_pages = 4096;
    ASSERT_TRUE(Database::Open(opts, &env_, "db", &db_).ok());
    ASSERT_TRUE(db_->CreateTsbIndex("versions", &tree_).ok());
  }

  // One committed MVCC overwrite, retried across lock conflicts.
  bool CommitPut(int key, const std::string& tag) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      Transaction* txn = db_->Begin();
      Status s = tree_->Put(txn, Key(key), Value(key, tag));
      if (s.ok()) s = db_->Commit(txn);
      if (s.ok()) return true;
      (void)db_->Abort(txn);
      if (!s.IsBusy() && !s.IsDeadlock()) return false;
      std::this_thread::yield();
    }
    return false;
  }

  void Fail(const std::string& why) {
    ++errors_;
    std::lock_guard<std::mutex> lk(err_mu_);
    if (first_error_.empty()) first_error_ = why;
  }

  SimEnv env_;
  std::unique_ptr<Database> db_;
  TsbTree* tree_ = nullptr;
  std::atomic<int> errors_{0};
  std::mutex err_mu_;
  std::string first_error_;
};

TEST_F(MvccConcurrencyTest, SnapshotsStayConsistentAcrossTimeSplits) {
  for (int k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(CommitPut(k, "seed"));
  }
  // Pinned before the storm; checked after it: its versions migrate into
  // historical nodes under it and must remain reachable and unchanged.
  auto pinned = db_->BeginSnapshot();

  std::atomic<bool> writers_done{false};
  std::vector<std::thread> threads;

  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([this, w] {
      for (int i = 0; i < kCommitsPerWriter; ++i) {
        int key = (w + i) % kKeys;
        if (!CommitPut(key, "w" + std::to_string(w) + "r" +
                                std::to_string(i))) {
          Fail("writer commit failed");
          return;
        }
      }
    });
  }

  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([this, r, &writers_done] {
      uint64_t rounds = 0;
      while (!writers_done.load(std::memory_order_acquire) || rounds < 5) {
        ++rounds;
        auto snap = db_->BeginSnapshot();
        // Point reads: present, well-formed, and repeatable.
        for (int k = r % kKeys; k < kKeys; k += kReaders) {
          std::string v1, v2;
          Status s1 = snap->Get(tree_, Key(k), &v1);
          Status s2 = snap->Get(tree_, Key(k), &v2);
          if (!s1.ok() || !s2.ok()) {
            Fail("snapshot Get failed: " + s1.ToString());
            return;
          }
          if (v1 != v2) {
            Fail("non-repeatable Get within one snapshot");
            return;
          }
          if (v1.compare(0, Key(k).size() + 1, Key(k) + "#") != 0 ||
              v1.size() != 120) {
            Fail("torn or cross-key value: " + v1);
            return;
          }
        }
        // Scans: complete and repeatable.
        std::vector<TsbScanEntry> a, b;
        if (!snap->Scan(tree_, "", "", kKeys * 2, &a).ok() ||
            !snap->Scan(tree_, "", "", kKeys * 2, &b).ok()) {
          Fail("snapshot Scan failed");
          return;
        }
        if (a.size() != static_cast<size_t>(kKeys)) {
          Fail("scan missed keys");
          return;
        }
        for (size_t i = 0; i < a.size(); ++i) {
          if (a[i].key != b[i].key || a[i].time != b[i].time ||
              a[i].value != b[i].value) {
            Fail("non-repeatable Scan within one snapshot");
            return;
          }
        }
      }
      // This thread only ever read through snapshots: the lock manager
      // must never have granted it anything (checker builds track this
      // per thread; zero elsewhere by definition).
      if (analysis::LockGrantsForTest() != 0) {
        Fail("snapshot reader acquired a lock-manager lock");
      }
    });
  }

  for (int w = 0; w < kWriters; ++w) threads[w].join();
  writers_done.store(true, std::memory_order_release);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  ASSERT_EQ(errors_.load(), 0) << first_error_;
  // The workload actually exercised the race: versions migrated.
  EXPECT_GT(tree_->stats().time_splits.load(), 0u);

  // The pinned snapshot still reads the seed world through history chains.
  std::string v;
  for (int k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(pinned->Get(tree_, Key(k), &v).ok()) << k;
    EXPECT_EQ(v, Value(k, "seed"));
  }
  std::vector<TsbScanEntry> out;
  ASSERT_TRUE(pinned->Scan(tree_, "", "", kKeys * 2, &out).ok());
  ASSERT_EQ(out.size(), static_cast<size_t>(kKeys));
  for (int k = 0; k < kKeys; ++k) {
    EXPECT_EQ(out[k].value, Value(k, "seed"));
  }

  std::string report;
  EXPECT_TRUE(tree_->CheckWellFormed(&report).ok()) << report;
}

}  // namespace
}  // namespace pitree
