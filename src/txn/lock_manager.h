#ifndef PITREE_TXN_LOCK_MANAGER_H_
#define PITREE_TXN_LOCK_MANAGER_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "txn/transaction.h"

namespace pitree {

/// Returns true if a lock in `a` may be held concurrently with one in `b`.
/// The matrix realizes §4.1.1 (S/U/X) and §4.2.2 (move locks):
///   - U is compatible with S but not with U/X (promotion safety);
///   - M (move) is compatible with readers (S, IS) but conflicts with
///     updaters (IU, U, X) and other moves.
bool LockModesCompatible(LockMode a, LockMode b);

/// Least mode at least as strong as both (for conversions, e.g. S -> X).
LockMode LockModeSupremum(LockMode a, LockMode b);

/// Database lock manager with FIFO-ish queuing, lock conversion, no-wait
/// acquisition, and waits-for-graph deadlock detection.
///
/// Latches never enter this table (paper §4.1: "latches do not involve the
/// database lock manager"); the No-Wait Rule is realized by callers using
/// `wait=false` while they hold conflicting latches.
class LockManager {
 public:
  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires (or converts to) `mode` on `resource` for `txn`.
  ///  - wait=true: blocks until granted; returns Deadlock if the wait would
  ///    close a cycle (the requester is the victim and must roll back).
  ///  - wait=false: returns Busy instead of blocking.
  /// Granted locks are recorded in txn->held_locks.
  Status Lock(Transaction* txn, const std::string& resource, LockMode mode,
              bool wait = true);

  /// Releases one lock (used by atomic actions releasing early).
  void Unlock(Transaction* txn, const std::string& resource);

  /// Releases everything `txn` holds (commit/abort).
  void ReleaseAll(Transaction* txn);

  /// True if some other transaction currently holds `resource` in a mode
  /// incompatible with `mode` (used for the move-lock visibility test:
  /// traversals that see a move lock must not schedule index postings).
  bool WouldConflict(TxnId self, const std::string& resource,
                     LockMode mode) const;

  /// Number of waits that ended in deadlock victimization (stats).
  uint64_t deadlock_count() const;

  /// Number of grants (fresh acquisitions + strengthening conversions).
  /// The MVCC tests assert this stays flat across snapshot reads: a
  /// snapshot reader never touches the lock manager at all.
  uint64_t grant_count() const;

 private:
  struct Request {
    TxnId txn;
    LockMode mode;
    bool granted;
  };
  using Queue = std::list<Request>;

  bool Grantable(const Queue& q, TxnId txn, LockMode mode) const
      REQUIRES(mu_);
  bool ConversionGrantable(const Queue& q, TxnId txn, LockMode mode) const
      REQUIRES(mu_);
  bool WaitWouldDeadlock(TxnId waiter) const REQUIRES(mu_);

  mutable Mutex mu_;
  CondVar cv_;
  std::unordered_map<std::string, Queue> table_ GUARDED_BY(mu_);
  // txn -> resource it is currently blocked on (one at a time per thread).
  std::unordered_map<TxnId, std::string> waiting_on_ GUARDED_BY(mu_);
  uint64_t deadlocks_ GUARDED_BY(mu_) = 0;
  uint64_t grants_ GUARDED_BY(mu_) = 0;
};

}  // namespace pitree

#endif  // PITREE_TXN_LOCK_MANAGER_H_
