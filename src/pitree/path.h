#ifndef PITREE_PITREE_PATH_H_
#define PITREE_PITREE_PATH_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace pitree {

/// One remembered node on a root-to-leaf traversal: page id plus the state
/// identifier (page LSN, §5.2) observed while the node was latched.
struct PathEntry {
  PageId page = kInvalidPageId;
  Lsn state_id = kInvalidLsn;
  uint8_t level = 0;
};

/// Saved root-to-target path, top-down (entry 0 is the root). Atomic actions
/// use it to relocate nodes without a full search, after verifying state
/// identifiers (§5.2: saved information must be verified before use).
struct SavedPath {
  std::vector<PathEntry> nodes;

  void Clear() { nodes.clear(); }
  void Push(PageId page, Lsn state_id, uint8_t level) {
    nodes.push_back({page, state_id, level});
  }
  /// Deepest remembered entry at `level`, or nullptr.
  const PathEntry* AtLevel(uint8_t level) const {
    for (const auto& e : nodes) {
      if (e.level == level) return &e;
    }
    return nullptr;
  }
};

}  // namespace pitree

#endif  // PITREE_PITREE_PATH_H_
