// Concurrency tests for instant restore (DESIGN.md §13): foreground
// threads fetch cold pages — each first touch replays that page's redo
// range under the pool's frame claim — while the background recovery
// sweeper drains the rest of the map. Run under TSan with the §4.1
// invariant checker on (CI's tsan job), this pins the claims the design
// makes: replay I/O happens with no latches or ranked mutexes held, the
// map's internal mutex stays a leaf, and lazy redo never publishes a frame
// another thread can see half-replayed.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "db/database.h"
#include "env/sim_env.h"

namespace pitree {
namespace {

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

constexpr int kSeedKeys = 250;

// Builds a crash image with every touched page's history pending: a bulk
// insert phase (splits included), a few deletes, and an in-flight loser,
// crashed before any page flush.
void BuildCrashImage(SimEnv* env) {
  Options opts;
  opts.inline_completion = true;
  opts.buffer_pool_pages = 4096;  // nothing evicts: data file stays empty
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(opts, env, "db", &db).ok());
  PiTree* tree;
  ASSERT_TRUE(db->CreateIndex("t", &tree).ok());
  const std::string value(120, 'v');
  for (int i = 0; i < kSeedKeys; ++i) {
    Transaction* txn = db->Begin();
    ASSERT_TRUE(tree->Insert(txn, Key(i), value).ok());
    ASSERT_TRUE(db->Commit(txn).ok());
  }
  for (int i = 0; i < 20; ++i) {
    Transaction* txn = db->Begin();
    ASSERT_TRUE(tree->Delete(txn, Key(i * 3)).ok());
    ASSERT_TRUE(db->Commit(txn).ok());
  }
  Transaction* loser = db->Begin();
  ASSERT_TRUE(tree->Insert(loser, "loser-key", value).ok());
  ASSERT_TRUE(db->context()->wal->FlushAll().ok());
  env->Crash();
  // Leak: post-crash destructor flushing would write post-crash state into
  // the simulated disk (same pattern as recovery_test.cc).
  (void)db.release();
}

// After BuildCrashImage: keys 0,3,6,...,57 were committed-deleted, the rest
// committed-present; every commit forced the log, so all are decided.
bool ExpectPresent(int i) { return !(i < 60 && i % 3 == 0); }

// Foreground Gets and Puts race the paced background sweeper over a cold
// database; every read must be correct on first touch and the whole run
// must be free of latch-order or No-Wait violations (checker aborts) and
// data races (TSan).
TEST(RecoveryConcurrencyTest, ColdFetchesRaceBackgroundSweeper) {
  SimEnv env;
  BuildCrashImage(&env);

  Options opts;
  opts.inline_completion = true;
  opts.buffer_pool_pages = 4096;
  opts.instant_restore = true;
  opts.recovery_sweeper = true;
  // Pace the sweeper so the map is still draining while the threads below
  // hammer cold pages; without the delay the sweeper can win outright and
  // the race being tested never happens.
  opts.recovery_sweep_delay_us = 50;
  std::unique_ptr<Database> db;
  RecoveryStats stats;
  ASSERT_TRUE(Database::Open(opts, &env, "db", &db, &stats).ok());
  EXPECT_GT(stats.pages_pending, 0u);
  PiTree* tree;
  ASSERT_TRUE(db->GetIndex("t", &tree).ok());

  std::atomic<int> failures{0};
  const int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rnd(0x5EED + static_cast<uint64_t>(t));
      for (int op = 0; op < 120; ++op) {
        if (rnd.Uniform(4) == 0) {
          // Fresh commit racing lazy redo of old history.
          std::string k = "fresh" + std::to_string(t * 1000 + op);
          for (int attempt = 0; attempt < 100; ++attempt) {
            Transaction* txn = db->Begin();
            Status s = tree->Insert(txn, k, "new");
            if (s.ok()) s = db->Commit(txn);
            else {
              (void)db->Abort(txn);
              if (s.IsBusy() || s.IsDeadlock()) continue;
            }
            if (!s.ok()) failures.fetch_add(1);
            break;
          }
        } else {
          int i = static_cast<int>(rnd.Uniform(kSeedKeys));
          Transaction* txn = db->Begin();
          std::string v;
          Status g = tree->Get(txn, Key(i), &v);
          (void)db->Commit(txn);
          if (ExpectPresent(i) ? !g.ok() : !g.IsNotFound()) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  ASSERT_TRUE(db->WaitUntilRecovered().ok());
  EXPECT_EQ(db->recovery_pending_pages(), 0u);

  // Post-drain: full sweep of the decided keys plus structural audit.
  Transaction* txn = db->Begin();
  std::string v;
  for (int i = 0; i < kSeedKeys; ++i) {
    Status g = tree->Get(txn, Key(i), &v);
    if (ExpectPresent(i)) {
      ASSERT_TRUE(g.ok()) << Key(i) << ": " << g.ToString();
    } else {
      ASSERT_TRUE(g.IsNotFound()) << Key(i) << ": " << g.ToString();
    }
  }
  ASSERT_TRUE(tree->Get(txn, "loser-key", &v).IsNotFound());
  ASSERT_TRUE(db->Commit(txn).ok());
  std::string report;
  ASSERT_TRUE(tree->CheckWellFormed(&report).ok()) << report;
}

// A fuzzy checkpoint taken while redo is still pending must keep the
// pending pages' redo obligations alive (the checkpoint DPT folds in
// RecoveryMap::PendingDpt), so a second crash recovers from the new
// checkpoint without losing their history — this drives the analysis
// two-scan path, whose DPT recLSNs precede the checkpoint's scan start.
TEST(RecoveryConcurrencyTest, CheckpointDuringRecoverySecondCrashRecovers) {
  SimEnv env;
  BuildCrashImage(&env);

  {
    Options opts;
    opts.inline_completion = true;
    opts.buffer_pool_pages = 4096;
    opts.instant_restore = true;
    // No sweeper thread: this database is crashed mid-recovery below, and
    // the leak pattern must not leak a running thread with it.
    opts.recovery_sweeper = false;
    std::unique_ptr<Database> db;
    ASSERT_TRUE(Database::Open(opts, &env, "db", &db).ok());
    ASSERT_GT(db->recovery_pending_pages(), 0u);

    // Touch a few pages so the pool DPT and the pending map overlap: the
    // checkpoint must merge both (min recLSN wins on double-reports).
    PiTree* tree;
    ASSERT_TRUE(db->GetIndex("t", &tree).ok());
    Transaction* txn = db->Begin();
    std::string v;
    for (int i = 100; i < 110; ++i) {
      ASSERT_TRUE(tree->Get(txn, Key(i), &v).ok());
    }
    ASSERT_TRUE(db->Commit(txn).ok());

    ASSERT_GT(db->recovery_pending_pages(), 0u)
        << "workload too small: map drained before the checkpoint";
    ASSERT_TRUE(db->Checkpoint().ok());

    env.Crash();
    (void)db.release();
  }

  // Second recovery (offline this time) from the mid-recovery checkpoint.
  Options opts;
  opts.inline_completion = true;
  opts.buffer_pool_pages = 4096;
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(opts, &env, "db", &db).ok());
  PiTree* tree;
  ASSERT_TRUE(db->GetIndex("t", &tree).ok());
  Transaction* txn = db->Begin();
  std::string v;
  for (int i = 0; i < kSeedKeys; ++i) {
    Status g = tree->Get(txn, Key(i), &v);
    if (ExpectPresent(i)) {
      ASSERT_TRUE(g.ok()) << Key(i) << ": " << g.ToString();
    } else {
      ASSERT_TRUE(g.IsNotFound()) << Key(i) << ": " << g.ToString();
    }
  }
  ASSERT_TRUE(tree->Get(txn, "loser-key", &v).IsNotFound());
  ASSERT_TRUE(db->Commit(txn).ok());
  std::string report;
  ASSERT_TRUE(tree->CheckWellFormed(&report).ok()) << report;
}

}  // namespace
}  // namespace pitree
