#include "recovery/checkpoint.h"

#include <algorithm>

#include "common/coding.h"
#include "mvcc/timestamp_oracle.h"
#include "recovery/recovery_map.h"
#include "wal/log_record.h"

namespace pitree {

std::string EncodeCheckpoint(const CheckpointData& data) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(data.att.size()));
  for (const auto& e : data.att) {
    PutVarint64(&out, e.txn_id);
    out.push_back(e.is_system ? 1 : 0);
    PutVarint64(&out, e.last_lsn);
    PutVarint64(&out, e.undo_next);
    out.push_back(e.aborting ? 1 : 0);
  }
  PutVarint32(&out, static_cast<uint32_t>(data.dpt.size()));
  for (const auto& [page, rec_lsn] : data.dpt) {
    PutFixed32(&out, page);
    PutVarint64(&out, rec_lsn);
  }
  PutVarint64(&out, data.oracle_ts);
  return out;
}

Status DecodeCheckpoint(Slice in, CheckpointData* data) {
  data->att.clear();
  data->dpt.clear();
  uint32_t n;
  if (!GetVarint32(&in, &n)) return Status::Corruption("ckpt att count");
  for (uint32_t i = 0; i < n; ++i) {
    AttEntry e;
    uint64_t v;
    if (!GetVarint64(&in, &v)) return Status::Corruption("ckpt att txn");
    e.txn_id = v;
    if (in.empty()) return Status::Corruption("ckpt att flags");
    e.is_system = in[0] != 0;
    in.remove_prefix(1);
    if (!GetVarint64(&in, &e.last_lsn)) return Status::Corruption("ckpt lsn");
    if (!GetVarint64(&in, &e.undo_next)) {
      return Status::Corruption("ckpt undo next");
    }
    if (in.empty()) return Status::Corruption("ckpt aborting");
    e.aborting = in[0] != 0;
    in.remove_prefix(1);
    data->att.push_back(e);
  }
  if (!GetVarint32(&in, &n)) return Status::Corruption("ckpt dpt count");
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t page;
    uint64_t rec_lsn;
    if (!GetFixed32(&in, &page) || !GetVarint64(&in, &rec_lsn)) {
      return Status::Corruption("ckpt dpt entry");
    }
    data->dpt.emplace_back(page, rec_lsn);
  }
  // Pre-MVCC checkpoints end here; their oracle high-water is zero.
  data->oracle_ts = 0;
  if (!in.empty() && !GetVarint64(&in, &data->oracle_ts)) {
    return Status::Corruption("ckpt oracle ts");
  }
  return Status::OK();
}

Status CheckpointManager::TakeCheckpoint() {
  LogRecord begin;
  begin.type = LogRecordType::kCheckpointBegin;
  Lsn begin_lsn;
  PITREE_RETURN_IF_ERROR(wal_->Append(begin, &begin_lsn));

  CheckpointData data;
  data.att = txns_->SnapshotAtt();
  // Pages still awaiting lazy redo are dirty-in-spirit: their durable
  // images predate their recLSNs, and nothing will flush them until a
  // fetch replays them. Fold them in so a crash after this checkpoint
  // re-derives their redo work. Sampling order matters: the map MUST be
  // read before the pool DPT. The fetch path marks the frame dirty before
  // retiring the map entry, so map-first sampling sees either the still-
  // pending entry or (entry already retired) the dirty frame in the later
  // pool snapshot — double-report at worst, never a gap. Pool-first would
  // open a window where the fetch dirties and retires between the two
  // reads and the page vanishes from both.
  std::vector<std::pair<PageId, Lsn>> map_dpt;
  if (recovery_map_ != nullptr) map_dpt = recovery_map_->PendingDpt();
  data.dpt = pool_->DirtyPageTable();
  {
    // Both snapshots may carry a page; keep the smaller recLSN so redo
    // starts early enough for both histories.
    for (const auto& [page, rec_lsn] : map_dpt) {
      auto it = std::find_if(
          data.dpt.begin(), data.dpt.end(),
          [page = page](const auto& e) { return e.first == page; });
      if (it == data.dpt.end()) {
        data.dpt.emplace_back(page, rec_lsn);
      } else if (rec_lsn < it->second) {
        it->second = rec_lsn;
      }
    }
  }
  // Read the clock after the ATT snapshot: any commit record that analysis
  // will not scan (it precedes this checkpoint) drew its timestamp before
  // this read, so the stamped high-water bounds it.
  if (oracle_ != nullptr) data.oracle_ts = oracle_->last_issued();

  LogRecord end;
  end.type = LogRecordType::kCheckpointEnd;
  end.misc = EncodeCheckpoint(data);
  Lsn end_lsn;
  PITREE_RETURN_IF_ERROR(wal_->Append(end, &end_lsn));
  // Group force: on return durable_lsn() > end_lsn, so the master record
  // below never points at a checkpoint the log does not durably contain.
  PITREE_RETURN_IF_ERROR(wal_->Flush(end_lsn));

  std::string master;
  PutFixed64(&master, begin_lsn);
  return env_->WriteFileAtomic(master_path_, master);
}

Status CheckpointManager::ReadMaster(Lsn* checkpoint_begin) const {
  std::string data;
  Status s = env_->ReadFileToString(master_path_, &data);
  if (!s.ok()) return s;
  if (data.size() < 8) return Status::Corruption("master record size");
  *checkpoint_begin = DecodeFixed64(data.data());
  return Status::OK();
}

}  // namespace pitree
