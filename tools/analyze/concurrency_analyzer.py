#!/usr/bin/env python3
"""Interprocedural §4.1 / epoch-discipline analyzer for the pitree engine.

Clang's thread-safety analysis (DESIGN.md §16) is intraprocedural: the
moment a latch hold crosses a function boundary — which is the *normal*
shape of §4.1 crabbing — it needs a NO_THREAD_SAFETY_ANALYSIS escape. This
tool picks up exactly where that analysis stops: it parses every translation
unit, builds a call graph, computes per-function *effect summaries*
(latches/mutexes acquired with their §11 ranks, epoch sections entered,
blocking waits, Env I/O), propagates them bottom-up to a fixpoint, and then
re-walks each function body with the callee summaries in hand.

Rule families (finding ids in brackets):

  [rank-order]  A blocking acquire — direct, or anywhere inside a callee —
                of a §11 rank lower than (or equal to, for non-tree ranks)
                something already held. The ranking, ascending in legal
                acquisition order (src/analysis/latch_id.h): kTreePage(1) <
                kSpaceMap(2) < kPoolShard(3) < kWalMutex(4). Equal-rank
                tree-page acquires are legal (the parent-before-child level
                sub-order is dynamic and checked at runtime).
  [epoch-block] A blocking acquire, blocking wait, or Env I/O — direct or
                via a callee — inside an epoch-guarded section. A parked
                optimistic reader stalls every reclaimer's grace period
                (storage/epoch.h).
  [latch-io]    Env I/O — direct or via a callee — while a page latch is
                held. Legal only where the design says so (reading a
                fetched page into its frame, flushing under S); every such
                site carries `analyze:allow-latch-io -- <reason>`.
  [unbalanced]  A return site whose local latch balance is nonzero, or that
                leaks a naked Mutex::Lock(), in a function *not* marked as
                an intentional cross-function span (`lint:tsa-escape`).
                Catches the error path that forgets a release.
  [olc-deref]   A frame-byte deref inside an optimistic window
                (OptimisticBegin / FetchOptimistic) with no covering
                Validate/ReadConsistent/Revalidate — directly or via a
                callee that validates.

Suppressions use the registered `analyze:` markers (tools/lint/markers.py)
on the finding line or the line directly above; every marker carries a
`-- <reason>` audit string. `analyze:latch-rank=<kRank>` is configuration:
it assigns a non-default rank to the latch acquired on the marked line
(e.g. the space-map latch in engine/page_alloc.cc).

Frontends:
  --frontend=lex        (default) a tokenizer over the source itself; used
                        locally and wherever clang is unavailable.
  --frontend=clang-ast  consumes `clang++ -Xclang -ast-dump=json` output
                        (one <stem>.json per TU in --ast-dir, as produced
                        by the CI analyze job); the AST is lowered to the
                        same per-function event stream, so both frontends
                        share the summary and rule machinery.

Usage:
  tools/analyze/concurrency_analyzer.py                 # analyze src/
  tools/analyze/concurrency_analyzer.py --json out.json # machine output
  tools/analyze/concurrency_analyzer.py --self-test     # embedded tests +
                                                        # testdata corpus
Exit status: 0 clean (suppressed findings allowed), 1 unsuppressed
findings, 2 self-test failure or internal error.
"""

import argparse
import json
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / 'tools' / 'lint'))
from markers import MARKERS  # noqa: E402  (single marker registry)

RANKS = {'kUnranked': 0, 'kTreePage': 1, 'kSpaceMap': 2, 'kPoolShard': 3,
         'kWalMutex': 4}
RANK_NAME = {v: k for k, v in RANKS.items()}

# Files whose locks are the instrumentation layer itself, not engine state.
EXCLUDE = ('src/analysis/',)

# ---------------------------------------------------------------------------
# Source mangling + markers
# ---------------------------------------------------------------------------

_STRING = re.compile(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'')
_MARKER = re.compile(r'\b((?:lint|analyze):[\w-]+)(=[\w-]+)?(\s*--\s*(\S.*))?')


def strip_code_lines(text):
    """Yields (lineno, line) with strings and comments blanked out."""
    in_block = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if in_block:
            end = line.find('*/')
            if end < 0:
                yield lineno, ''
                continue
            line = ' ' * (end + 2) + line[end + 2:]
            in_block = False
        line = _STRING.sub('""', line)
        while True:
            start = line.find('/*')
            if start < 0:
                break
            end = line.find('*/', start + 2)
            if end < 0:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + ' ' * (end + 2 - start) + line[end + 2:]
        idx = line.find('//')
        if idx >= 0:
            line = line[:idx]
        yield lineno, line


def collect_markers(text):
    """{lineno: {name: value_or_None}} for every registered marker."""
    out = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        for m in _MARKER.finditer(line):
            name = m.group(1)
            if name in MARKERS:
                out.setdefault(lineno, {})[name] = \
                    m.group(2)[1:] if m.group(2) else None
    return out


def marker_at(markers, lineno, name):
    """Marker on the line or the line directly above (site scope)."""
    for ln in (lineno, lineno - 1):
        if name in markers.get(ln, {}):
            return True, markers[ln][name]
    return False, None


# ---------------------------------------------------------------------------
# Shared IR: a Function is a name plus a linear event stream
# ---------------------------------------------------------------------------

class Function:
    def __init__(self, qualname, path, sig_line, body_line):
        self.qualname = qualname          # 'PiTree::Get' or 'EngineAllocPage'
        self.cls = qualname.rsplit('::', 1)[0] if '::' in qualname else ''
        self.name = qualname.rsplit('::', 1)[-1]
        self.path = str(path)
        self.sig_line = sig_line
        self.body_line = body_line
        self.instrs = []                  # [(line, op, dict)]
        self.escaped = False              # carries lint:tsa-escape
        self.types = {}                   # TU-local {var: class} hints

    def emit(self, line, op, **data):
        self.instrs.append((line, op, data))


class Summary:
    """Transitive effect summary, computed to fixpoint over the call graph."""

    def __init__(self):
        self.may_block = False
        self.may_io = False
        self.validates = False            # contains an OLC validate
        self.acq_ranks = set()            # blocking-acquired ranks, own+callees

    def merge_from(self, other):
        changed = False
        for attr in ('may_block', 'may_io', 'validates'):
            if getattr(other, attr) and not getattr(self, attr):
                setattr(self, attr, True)
                changed = True
        if not other.acq_ranks <= self.acq_ranks:
            self.acq_ranks |= other.acq_ranks
            changed = True
        return changed


# ---------------------------------------------------------------------------
# Rank model: Mutex members declared with an analysis::Rank, per file stem
# ---------------------------------------------------------------------------

_RANK_DECL = re.compile(r'\bMutex\s+(\w+)\s*\{\s*analysis::Rank::(\w+)\s*\}')


def build_rank_map(files):
    """{file_stem: {member_name: rank_int}} from Mutex declarations."""
    ranks = {}
    for path, text in files.items():
        stem = pathlib.Path(path).stem
        for lineno, line in strip_code_lines(text):
            for m in _RANK_DECL.finditer(line):
                ranks.setdefault(stem, {})[m.group(1)] = \
                    RANKS.get(m.group(2), 0)
    return ranks


# Variable/member declarations whose type is an engine class give member
# calls a precise target: `WalSegmentSet segments_;` means `segments_.Open()`
# resolves to WalSegmentSet::Open, not to every Open in the tree. Hints are
# per-TU-stem, like ranks, and purely best-effort: a miss falls back to the
# name union.
_TYPE_DECL = re.compile(
    r'\b([A-Z]\w{2,})(?:<[^;>]*>)?\s*[&*]?\s+(\w+)\s*[;={]')


def build_type_map(files):
    """{file_stem: {var_name: class_name}} from declarations."""
    types = {}
    for path, text in files.items():
        stem = pathlib.Path(path).stem
        for lineno, line in strip_code_lines(text):
            for m in _TYPE_DECL.finditer(line):
                types.setdefault(stem, {})[m.group(2)] = m.group(1)
    return types


# ---------------------------------------------------------------------------
# Lexer frontend: stripped source lines -> event stream
# ---------------------------------------------------------------------------

_KEYWORDS = frozenset((
    'if', 'for', 'while', 'switch', 'return', 'sizeof', 'alignof', 'assert',
    'static_cast', 'reinterpret_cast', 'const_cast', 'dynamic_cast',
    'decltype', 'defined', 'new', 'delete', 'catch', 'noexcept', 'alignas'))

# Member calls with these names are overwhelmingly std:: containers/strings
# (`msg_.empty()`, `key.compare(...)`); resolving them by bare name to a
# same-named engine method (e.g. WalSegmentSet::empty, which takes a mutex)
# poisons every transitive caller's summary. They resolve only through an
# explicit class qualifier or a type hint.
_STL_MEMBERS = frozenset((
    'empty', 'size', 'clear', 'begin', 'end', 'data', 'c_str', 'find',
    'count', 'compare', 'substr', 'append', 'push_back', 'pop_back',
    'emplace_back', 'insert', 'erase', 'front', 'back', 'at', 'resize',
    'reserve', 'reset', 'get', 'release', 'swap', 'first', 'second',
    'length', 'str', 'value', 'has_value'))

_PAT = [
    ('brace', re.compile(r'[{}]')),
    ('guard', re.compile(
        r'\b(MutexLock|ReleasableMutexLock)\s+(\w+)\s*\(\s*&\s*'
        r'([\w.>\[\]()-]+?)\s*\)')),
    ('shardlock', re.compile(r'\bShardLock\s+(\w+)\s*\(')),
    ('epoch', re.compile(r'\bEpochGuard\s+(\w+)\s*[;({]')),
    ('mutexop', re.compile(
        r'((?:\w+(?:\.|->))*)(\w+)\s*\.\s*(Lock|Unlock|TryLock)\s*\(')),
    ('latchacq', re.compile(r'\.\s*(Try)?Acquire([SUX])\s*\(')),
    ('latchrel', re.compile(r'\.\s*Release([SUX]?)\s*\(')),
    ('promote', re.compile(r'\.\s*PromoteUToX\s*\(')),
    ('demote', re.compile(r'\.\s*DemoteXToU\s*\(')),
    ('acqmode', re.compile(r'\bAcquireMode\s*\(')),
    ('wait', re.compile(r'\.\s*Wait(?:For|Until)?\s*\(')),
    ('grace', re.compile(r'\bWaitGracePeriod\s*\(')),
    ('io', re.compile(
        r'\b(?:ReadPage|WritePage|ReadFileToString|WriteFileAtomic'
        r'|DoRead|DoWrite|DoSync|DoEnsureDurable)\s*\('
        r'|->\s*Sync\s*\(')),
    ('olc_begin', re.compile(r'\b(?:OptimisticBegin|FetchOptimistic)\s*\(')),
    ('olc_close', re.compile(
        r'\b(?:Validate|ReadConsistent|Revalidate)\s*\(')),
    ('olc_deref', re.compile(
        r'(?:\.\s*data\s*\(\)|->\s*data\s*\(\)|\bdata\s*\.\s*get\s*\(\))')),
    ('ret', re.compile(r'\breturn\b')),
    ('call', re.compile(
        r'((?:\w+(?:\.|->))?)(?:(\w+)::)?([A-Za-z_]\w*)\s*\(')),
]

# Guard types a callee can receive by reference: Lock/Unlock on such a
# parameter manages the *caller's* hold, not a leak in the callee.
_GUARD_PARAM = re.compile(
    r'\b(?:MutexLock|ReleasableMutexLock|ShardLock)\s*&\s*(\w+)')


def scan_body(fn, lines, file_ranks, markers, sig_text=''):
    """Lowers (lineno, stripped_line) pairs into fn's event stream.

    `file_ranks` maps mutex member names to §11 ranks for this TU;
    `markers` is the raw-text marker map (for analyze:latch-rank);
    `sig_text` is the signature, scanned for by-reference guard params.
    """
    guard_vars = set(m.group(1) for m in _GUARD_PARAM.finditer(sig_text))
    for var in guard_vars:
        fn.emit(fn.body_line, 'guard_param', var=var)
    for lineno, line in lines:
        events = []   # (start, kind, match)
        taken = []    # spans claimed by specialized patterns
        for kind, pat in _PAT:
            if kind == 'call':
                continue
            for m in pat.finditer(line):
                events.append((m.start(), kind, m))
                taken.append((m.start(), m.end()))
        for m in _PAT[-1][1].finditer(line):    # generic calls last
            if any(s < m.end() and m.start() < e for s, e in taken):
                continue
            name = m.group(3)
            if name in _KEYWORDS:
                continue
            events.append((m.start(), 'call', m))
        events.sort(key=lambda t: t[0])
        for _, kind, m in events:
            if kind == 'brace':
                fn.emit(lineno, 'open' if m.group(0) == '{' else 'close')
            elif kind == 'guard':
                var, target = m.group(2), m.group(3)
                member = target.split('.')[-1].split('->')[-1]
                rank = file_ranks.get(member, 0)
                guard_vars.add(var)
                fn.emit(lineno, 'guard', var=var, rank=rank, target=member)
            elif kind == 'shardlock':
                var = m.group(1)
                guard_vars.add(var)
                fn.emit(lineno, 'guard', var=var, rank=RANKS['kPoolShard'],
                        target='shard.mu')
            elif kind == 'epoch':
                fn.emit(lineno, 'epoch_guard', var=m.group(1))
            elif kind == 'mutexop':
                obj, meth = m.group(2), m.group(3)
                if obj in guard_vars:
                    fn.emit(lineno, 'guard_unlock' if meth == 'Unlock'
                            else 'guard_relock', var=obj)
                else:
                    rank = file_ranks.get(obj, 0)
                    if meth == 'Lock':
                        fn.emit(lineno, 'mutex_lock', target=obj, rank=rank,
                                blocking=True)
                    elif meth == 'TryLock':
                        fn.emit(lineno, 'mutex_lock', target=obj, rank=rank,
                                blocking=False)
                    else:
                        fn.emit(lineno, 'mutex_unlock', target=obj)
            elif kind == 'latchacq':
                blocking = m.group(1) is None
                ok, val = marker_at(markers, lineno, 'analyze:latch-rank')
                rank = RANKS.get(val, RANKS['kTreePage']) if ok \
                    else RANKS['kTreePage']
                fn.emit(lineno, 'latch_acquire', mode=m.group(2),
                        blocking=blocking, rank=rank)
            elif kind == 'latchrel':
                fn.emit(lineno, 'latch_release', mode=m.group(1) or '?')
            elif kind == 'promote':
                fn.emit(lineno, 'blocking_point', what='PromoteUToX')
            elif kind == 'demote':
                pass                      # balance- and rank-neutral
            elif kind == 'acqmode':
                ok, val = marker_at(markers, lineno, 'analyze:latch-rank')
                rank = RANKS.get(val, RANKS['kTreePage']) if ok \
                    else RANKS['kTreePage']
                fn.emit(lineno, 'latch_acquire', mode='?', blocking=True,
                        rank=rank)
            elif kind == 'wait':
                fn.emit(lineno, 'blocking_point', what='CondVar wait')
            elif kind == 'grace':
                fn.emit(lineno, 'blocking_point', what='WaitGracePeriod')
            elif kind == 'io':
                fn.emit(lineno, 'io', what=m.group(0).strip('(- >').strip())
            elif kind == 'olc_begin':
                fn.emit(lineno, 'olc_begin')
            elif kind == 'olc_close':
                fn.emit(lineno, 'olc_validate')
            elif kind == 'olc_deref':
                fn.emit(lineno, 'olc_deref')
            elif kind == 'ret':
                fn.emit(lineno, 'ret')
            elif kind == 'call':
                obj = m.group(1).rstrip('.->') if m.group(1) else ''
                fn.emit(lineno, 'call', cls=m.group(2) or '',
                        name=m.group(3), member=bool(m.group(1)), obj=obj)
    fn.emit(lines[-1][0] if lines else fn.body_line, 'ret')  # implicit exit


_SIG_NAME = re.compile(r'([\w~]+(?:::[\w~]+)*)\s*\($')


def parse_source(path, text, file_ranks, file_types=None):
    """Lexer frontend: extracts namespace-scope function definitions."""
    markers = collect_markers(text)
    stripped = list(strip_code_lines(text))
    functions = []
    depth = 0
    sig = []                              # (lineno, line) candidate signature
    i = 0
    while i < len(stripped):
        lineno, line = stripped[i]
        s = line.strip()
        if depth == 0:
            if s.startswith('namespace') and s.endswith('{'):
                i += 1
                continue
            if s == '}' or s.startswith('} '):
                i += 1
                continue
            if not s or s.startswith('#'):
                if not s:
                    sig = []
                i += 1
                continue
            sig.append((lineno, line))
            joined = ' '.join(l.strip() for _, l in sig)
            if '{' in line:
                head = joined.split('{')[0]
                paren = head.find('(')
                name_m = _SIG_NAME.search(head[:paren + 1]) \
                    if paren >= 0 else None
                bad = (';' in head or paren < 0 or name_m is None or
                       head.lstrip().startswith(('class ', 'struct ',
                                                 'enum ', 'union ')) or
                       '=' in head[:paren])
                if bad:
                    # Not a function definition (class, initializer, ...):
                    # skip the whole braced region.
                    sig = []
                    d = line.count('{') - line.count('}')
                    while d > 0 and i + 1 < len(stripped):
                        i += 1
                        d += stripped[i][1].count('{') \
                            - stripped[i][1].count('}')
                    i += 1
                    continue
                fn = Function(name_m.group(1), path, sig[0][0], lineno)
                fn.types = file_types or {}
                body = []
                brace_in_sig = line[line.find('{'):]
                d = brace_in_sig.count('{') - brace_in_sig.count('}')
                body.append((lineno, brace_in_sig))
                while d > 0 and i + 1 < len(stripped):
                    i += 1
                    body.append(stripped[i])
                    d += stripped[i][1].count('{') \
                        - stripped[i][1].count('}')
                scan_body(fn, body, file_ranks, markers, sig_text=head)
                for ln in range(max(1, fn.sig_line - 4), fn.body_line + 1):
                    if 'lint:tsa-escape' in markers.get(ln, {}) or \
                       'analyze:allow-unbalanced' in markers.get(ln, {}):
                        fn.escaped = True
                functions.append(fn)
                sig = []
                # The body (brace-balanced) was consumed above; counting the
                # signature line's '{' here would strand depth at 1 and hide
                # every later function in the file.
                i += 1
                continue
            elif ';' in line:
                sig = []
        else:
            pass
        depth += line.count('{') - line.count('}')
        if depth < 0:
            depth = 0
        i += 1
    return functions, markers


# ---------------------------------------------------------------------------
# Clang AST JSON frontend: lower the AST to pseudo-source, reuse scan_body
# ---------------------------------------------------------------------------

def _ast_line(node, state):
    loc = node.get('range', {}).get('begin', {}) or node.get('loc', {})
    # clang omits 'line' when unchanged from the previous node; also unwrap
    # spellingLoc/expansionLoc wrappers.
    for key in ('spellingLoc', 'expansionLoc'):
        if key in loc:
            loc = loc[key]
    if 'line' in loc:
        state['line'] = loc['line']
    return state.get('line', 1)


def _ast_member_path(node):
    """Flattens a MemberExpr/DeclRefExpr chain into 'a.b.c'."""
    if node.get('kind') == 'MemberExpr':
        base = ''
        for ch in node.get('inner', []):
            base = _ast_member_path(ch)
            if base:
                break
        name = node.get('name', '')
        return f'{base}.{name}' if base else name
    if node.get('kind') == 'DeclRefExpr':
        return node.get('referencedDecl', {}).get('name', '')
    for ch in node.get('inner', []):
        p = _ast_member_path(ch)
        if p:
            return p
    return ''


def _ast_render(node, out, state):
    """Appends (line, pseudo_text) fragments for the events we model."""
    kind = node.get('kind', '')
    line = _ast_line(node, state)
    if kind == 'CompoundStmt':
        out.append((line, '{'))
        for ch in node.get('inner', []):
            _ast_render(ch, out, state)
        out.append((state.get('line', line), '}'))
        return
    if kind == 'ReturnStmt':
        out.append((line, 'return'))
        for ch in node.get('inner', []):
            _ast_render(ch, out, state)
        out.append((line, ';'))
        return
    if kind == 'VarDecl':
        typ = node.get('type', {}).get('qualType', '')
        name = node.get('name', '')
        base = typ.split('<')[0].strip().split('::')[-1]
        if base in ('MutexLock', 'ReleasableMutexLock'):
            target = 'unknown_mu'
            for ch in node.get('inner', []):
                p = _ast_member_path(ch)
                if p:
                    target = p
                    break
            out.append((line, f'{base} {name}(&{target})'))
            return
        if base == 'ShardLock':
            out.append((line, f'ShardLock {name}(s)'))
            return
        if base == 'EpochGuard':
            out.append((line, f'EpochGuard {name};'))
            return
    if kind == 'CXXMemberCallExpr':
        inner = node.get('inner', [])
        meth, obj = '', ''
        if inner and inner[0].get('kind') == 'MemberExpr':
            meth = inner[0].get('name', '')
            for ch in inner[0].get('inner', []):
                obj = _ast_member_path(ch)
                if obj:
                    break
        out.append((line, f'{obj or "obj"}.{meth}()'))
        for ch in inner[1:]:
            _ast_render(ch, out, state)
        return
    if kind == 'CallExpr':
        name = ''
        for ch in node.get('inner', []):
            name = _ast_member_path(ch)
            if name:
                break
        out.append((line, f'{name or "fn"}()'))
        for ch in node.get('inner', [])[1:]:
            _ast_render(ch, out, state)
        return
    for ch in node.get('inner', []):
        _ast_render(ch, out, state)


def _ast_walk_functions(node, path, file_ranks, markers, functions, cls=''):
    kind = node.get('kind', '')
    if kind == 'CXXRecordDecl':
        cls = node.get('name', cls)
    if kind in ('FunctionDecl', 'CXXMethodDecl', 'CXXConstructorDecl',
                'CXXDestructorDecl') and not node.get('isImplicit'):
        body = next((ch for ch in node.get('inner', [])
                     if ch.get('kind') == 'CompoundStmt'), None)
        if body is not None:
            name = node.get('name', '?')
            qual = f'{cls}::{name}' if kind != 'FunctionDecl' and cls \
                else name
            state = {}
            line = _ast_line(node, state)
            fn = Function(qual, path, line, line)
            # Synthesize a signature string from ParmVarDecls so guard-type
            # reference parameters are recognized, as in the lexer frontend.
            params = []
            for ch in node.get('inner', []):
                if ch.get('kind') == 'ParmVarDecl':
                    ty = ch.get('type', {}).get('qualType', '')
                    params.append(f"{ty} {ch.get('name', '')}")
            sig_text = f"{qual}({', '.join(params)})"
            out = []
            _ast_render(body, out, state)
            merged = [(ln, txt) for ln, txt in out]
            scan_body(fn, merged, file_ranks, markers, sig_text=sig_text)
            for ln in range(max(1, fn.sig_line - 4), fn.sig_line + 2):
                if 'lint:tsa-escape' in markers.get(ln, {}) or \
                   'analyze:allow-unbalanced' in markers.get(ln, {}):
                    fn.escaped = True
            functions.append(fn)
            return
    for ch in node.get('inner', []):
        _ast_walk_functions(ch, path, file_ranks, markers, functions, cls)


def parse_clang_ast(path, ast, source_text, file_ranks, file_types=None):
    """AST frontend: same Function IR as parse_source."""
    markers = collect_markers(source_text) if source_text else {}
    functions = []
    _ast_walk_functions(ast, path, file_ranks, markers, functions)
    # The dump covers included headers too; keep only this TU's functions.
    functions = [f for f in functions if f.instrs]
    for f in functions:
        f.types = file_types or {}
    return functions, markers


# ---------------------------------------------------------------------------
# Call graph + fixpoint summaries
# ---------------------------------------------------------------------------

def resolve_callees(fn, by_name):
    """Callee Functions for every call event.

    Bare calls prefer same-class candidates (an unqualified call from a
    method is usually to a sibling). An explicit-object member call
    (`segments_.Open(...)`) is the opposite: it targets *another* object,
    so the caller itself is excluded — otherwise every `x_.Open()` inside
    a method named Open becomes a phantom self-recursion.
    """
    out = []
    for line, op, data in fn.instrs:
        if op != 'call':
            continue
        cands = by_name.get(data['name'], [])
        if data['cls']:
            exact = [c for c in cands if c.cls == data['cls']]
            cands = exact or cands
        elif data.get('member'):
            hint = fn.types.get(data.get('obj', ''))
            if hint:
                # A type hint pins the class; no parsed method of that
                # class means the callee is out of scope (std::, inline
                # header) — treat as unresolved rather than fall back to
                # the union.
                cands = [c for c in cands if c.cls == hint]
            elif data['name'] in _STL_MEMBERS:
                cands = []
            else:
                cands = [c for c in cands if c is not fn]
        elif fn.cls:
            same = [c for c in cands if c.cls == fn.cls]
            cands = same or cands
        out.append((line, data['name'], cands))
    return out


def compute_summaries(functions):
    by_name = {}
    for f in functions:
        by_name.setdefault(f.name, []).append(f)
    sums = {id(f): Summary() for f in functions}
    for f in functions:
        s = sums[id(f)]
        # Caller-passed guards model the drop-before-acquire hand-off
        # (FlushFrame unlocks the shard lock it received, then blocks on a
        # page latch): a blocking acquire made while every passed-in guard
        # is unlocked happens outside the caller's critical section, so its
        # rank must not feed the caller-side §11 check. may_block still
        # propagates — the thread parks either way.
        param_locked = {}
        for _, op, data in f.instrs:
            if op == 'guard_param':
                param_locked[data['var']] = True
        def caller_holds():
            return not param_locked or any(param_locked.values())
        for _, op, data in f.instrs:
            if op == 'guard_unlock' and data['var'] in param_locked:
                param_locked[data['var']] = False
            elif op == 'guard_relock' and data['var'] in param_locked:
                param_locked[data['var']] = True
            elif op in ('mutex_lock', 'latch_acquire'):
                if data.get('blocking'):
                    s.may_block = True
                    if data['rank'] and caller_holds():
                        s.acq_ranks.add(data['rank'])
            elif op == 'guard':
                s.may_block = True
                if data['rank'] and caller_holds():
                    s.acq_ranks.add(data['rank'])
            elif op == 'blocking_point':
                s.may_block = True
            elif op == 'io':
                s.may_io = True
            elif op == 'olc_validate':
                s.validates = True
    callees = {id(f): [c for _, _, cs in resolve_callees(f, by_name)
                       for c in cs] for f in functions}
    changed = True
    while changed:
        changed = False
        for f in functions:
            s = sums[id(f)]
            for c in callees[id(f)]:
                if s.merge_from(sums[id(c)]):
                    changed = True
    return sums, by_name


# ---------------------------------------------------------------------------
# Rules engine
# ---------------------------------------------------------------------------

class Finding:
    def __init__(self, path, lineno, rule, func, msg, suppressed=False,
                 reason=None):
        self.path, self.lineno, self.rule = str(path), lineno, rule
        self.func, self.msg = func, msg
        self.suppressed, self.reason = suppressed, reason

    def __str__(self):
        tag = ' (suppressed)' if self.suppressed else ''
        return (f'{self.path}:{self.lineno}: [{self.rule}]{tag} '
                f'in {self.func}: {self.msg}')

    def as_dict(self):
        return dict(path=self.path, line=self.lineno, rule=self.rule,
                    function=self.func, message=self.msg,
                    suppressed=self.suppressed, reason=self.reason)


_SUPPRESS = {'rank-order': 'analyze:allow-rank-order',
             'epoch-block': 'analyze:allow-epoch-block',
             'latch-io': 'analyze:allow-latch-io',
             'unbalanced': 'analyze:allow-unbalanced',
             'olc-deref': 'analyze:allow-olc-deref'}


def check_function(fn, sums, by_name, markers):
    findings = []
    seen = set()

    def report(line, rule, msg):
        if (line, rule, msg) in seen:   # implicit-exit ret can revisit a site
            return
        seen.add((line, rule, msg))
        ok, reason = marker_at(markers, line, _SUPPRESS[rule])
        if not ok and rule == 'olc-deref':
            ok, reason = marker_at(markers, line, 'lint:olc-validated')
        findings.append(Finding(fn.path, line, rule, fn.qualname, msg,
                                suppressed=ok, reason=reason))

    scopes = [[]]                 # per-scope auto-release lists
    guards = {}                   # var -> [rank, held]
    naked = {}                    # mutex target -> rank
    latches = []                  # multiset of held latch ranks
    epoch = 0
    olc_open = 0

    def held_ranks():
        rs = [r for r, h in guards.values() if h and r]
        rs += [r for r in naked.values() if r]
        rs += [r for r in latches if r]
        return rs

    def check_rank(line, r, what):
        if not r:
            return
        held = held_ranks()
        worse = [h for h in held if h > r or
                 (h == r and r != RANKS['kTreePage'])]
        if worse:
            report(line, 'rank-order',
                   f'blocking acquire of {RANK_NAME[r]} while holding '
                   f'{RANK_NAME[max(worse)]} — §11 order is '
                   f'kTreePage < kSpaceMap < kPoolShard < kWalMutex '
                   f'({what})')

    def check_epoch(line, what):
        if epoch > 0:
            report(line, 'epoch-block',
                   f'{what} inside an epoch section — a parked optimistic '
                   f'reader stalls every reclaimer\'s grace period')

    cands_at = {}
    for line, name, cands in resolve_callees(fn, by_name):
        cands_at.setdefault((line, name), []).extend(cands)

    for line, op, data in fn.instrs:
        if op == 'open':
            scopes.append([])
        elif op == 'close':
            if len(scopes) > 1:
                for kind, key in scopes.pop():
                    if kind == 'guard' and key in guards:
                        guards[key][1] = False
                    elif kind == 'epoch':
                        epoch = max(0, epoch - 1)
        elif op == 'guard':
            check_epoch(line, 'blocking mutex acquire')
            check_rank(line, data['rank'], f'guard on {data["target"]}')
            guards[data['var']] = [data['rank'], True]
            scopes[-1].append(('guard', data['var']))
        elif op == 'guard_param':
            # Caller-owned guard received by reference: held on entry, and
            # the caller (not this function) owns the final release.
            guards[data['var']] = [0, True]
        elif op == 'guard_unlock':
            if data['var'] in guards:
                guards[data['var']][1] = False
        elif op == 'guard_relock':
            if data['var'] in guards:
                check_epoch(line, 'blocking mutex re-acquire')
                check_rank(line, guards[data['var']][0], 're-lock')
                guards[data['var']][1] = True
        elif op == 'mutex_lock':
            if data['blocking']:
                check_epoch(line, 'blocking mutex acquire')
                check_rank(line, data['rank'], f'Lock on {data["target"]}')
            naked[data['target']] = data['rank']
        elif op == 'mutex_unlock':
            naked.pop(data['target'], None)
        elif op == 'latch_acquire':
            if data['blocking']:
                check_epoch(line, 'blocking latch acquire')
                check_rank(line, data['rank'],
                           f'Acquire{data["mode"]}')
            latches.append(data['rank'])
        elif op == 'latch_release':
            if latches:
                latches.pop()
        elif op == 'blocking_point':
            check_epoch(line, data['what'])
        elif op == 'epoch_guard':
            epoch += 1
            scopes[-1].append(('epoch', data['var']))
        elif op == 'io':
            check_epoch(line, f'Env I/O ({data["what"]})')
            if latches:
                report(line, 'latch-io',
                       f'Env I/O ({data["what"]}) while a page latch is '
                       f'held')
        elif op == 'olc_begin':
            olc_open = line
        elif op == 'olc_validate':
            olc_open = 0
        elif op == 'olc_deref':
            if olc_open:
                report(line, 'olc-deref',
                       f'frame-byte deref inside the optimistic window '
                       f'opened at line {olc_open} with no covering '
                       f'Validate')
        elif op == 'ret':
            if not fn.escaped:
                if latches:
                    report(line, 'unbalanced',
                           f'return with {len(latches)} latch hold(s) '
                           f'unreleased (no lint:tsa-escape on this '
                           f'function)')
                if naked:
                    t = ', '.join(sorted(naked))
                    report(line, 'unbalanced',
                           f'return leaks naked Mutex::Lock() on {t}')
        elif op == 'call':
            cs = cands_at.get((line, data['name']), [])
            if not cs:
                continue
            may_block = any(sums[id(c)].may_block for c in cs)
            may_io = any(sums[id(c)].may_io for c in cs)
            ranks = set()
            for c in cs:
                ranks |= sums[id(c)].acq_ranks
            if may_block:
                check_epoch(line, f'call to blocking {data["name"]}()')
            if may_io:
                check_epoch(line, f'call to I/O-reaching {data["name"]}()')
                if latches:
                    report(line, 'latch-io',
                           f'call to {data["name"]}() which reaches Env '
                           f'I/O while a page latch is held')
            for r in sorted(ranks):
                check_rank(line, r, f'via call to {data["name"]}()')
            if any(sums[id(c)].validates for c in cs):
                olc_open = 0
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def load_tree(roots):
    files = {}
    for root in roots:
        base = REPO_ROOT / root
        if base.is_file():
            files[str(root)] = base.read_text(errors='replace')
            continue
        for p in sorted(base.rglob('*')):
            rel = str(p.relative_to(REPO_ROOT))
            if p.suffix in ('.cc', '.h') and p.is_file() and \
                    not any(rel.startswith(e) for e in EXCLUDE):
                files[rel] = p.read_text(errors='replace')
    return files


def analyze(files, frontend='lex', ast_dir=None):
    rank_map = build_rank_map(files)
    type_map = build_type_map(files)
    functions, markers_by_file = [], {}
    for path, text in files.items():
        if not path.endswith('.cc'):
            continue
        stem = pathlib.Path(path).stem
        # Ranked-mutex members resolve within their own TU (<stem>.h +
        # <stem>.cc) only: guard declarations against a *member* mutex only
        # ever appear in the owning class's TU, and a global name merge
        # would mislabel unrelated members that happen to share a name
        # (e.g. every class calls something `mu_`). Cross-TU acquisition is
        # modeled at the call graph level instead.
        file_ranks = dict(rank_map.get(stem, {}))
        file_types = dict(type_map.get(stem, {}))
        if frontend == 'clang-ast':
            ast_path = pathlib.Path(ast_dir) / (stem + '.json')
            if not ast_path.exists():
                print(f'note: no AST dump for {path}; falling back to lex',
                      file=sys.stderr)
                fns, mk = parse_source(path, text, file_ranks, file_types)
            else:
                ast = json.loads(ast_path.read_text())
                fns, mk = parse_clang_ast(path, ast, text, file_ranks,
                                          file_types)
        else:
            fns, mk = parse_source(path, text, file_ranks, file_types)
        functions.extend(fns)
        markers_by_file[path] = mk
    sums, by_name = compute_summaries(functions)
    findings = []
    for fn in functions:
        findings.extend(
            check_function(fn, sums, by_name, markers_by_file[fn.path]))
    return findings, functions


def main(argv):
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    ap.add_argument('--self-test', action='store_true')
    ap.add_argument('--json', metavar='OUT', help='write findings as JSON')
    ap.add_argument('--frontend', choices=('lex', 'clang-ast'),
                    default='lex')
    ap.add_argument('--ast-dir', default='build/ast',
                    help='directory of per-TU clang AST JSON dumps')
    ap.add_argument('--list-functions', action='store_true',
                    help='debug: print every parsed function')
    ap.add_argument('paths', nargs='*', default=['src'])
    args = ap.parse_args(argv)
    if args.self_test:
        return self_test()
    files = load_tree(args.paths)
    findings, functions = analyze(files, args.frontend, args.ast_dir)
    if args.list_functions:
        for f in functions:
            print(f'{f.path}:{f.sig_line}: {f.qualname} '
                  f'({len(f.instrs)} events)')
    live = [f for f in findings if not f.suppressed]
    for f in findings:
        print(f)
    if args.json:
        payload = dict(
            findings=[f.as_dict() for f in findings],
            stats=dict(functions=len(functions),
                       findings=len(live),
                       suppressed=len(findings) - len(live)))
        pathlib.Path(args.json).write_text(json.dumps(payload, indent=2))
    if live:
        print(f'{len(live)} unsuppressed finding(s) '
              f'({len(findings) - len(live)} suppressed)', file=sys.stderr)
        return 1
    print(f'analyze clean: {len(functions)} functions, '
          f'{len(findings) - len(live)} suppressed finding(s)')
    return 0


# ---------------------------------------------------------------------------
# Self-tests: embedded snippets + the testdata corpus
# ---------------------------------------------------------------------------

def _run_snippet(snippets):
    """snippets: {path: source}. Returns findings."""
    return analyze(dict(snippets))[0]


_EMBEDDED = [
    ('rank-order fires: latch under pool-shard mutex', {
        'x.h': 'struct S { Mutex mu{analysis::Rank::kPoolShard}; };',
        'x.cc': '''Status Bad(Shard& s, PageHandle& h) {
          MutexLock lk(&mu);
          h.latch().AcquireX();
          h.latch().ReleaseX();
          return Status::OK();
        }'''}, [('rank-order', 3)]),
    ('rank-order quiet: WAL mutex under latch (ascending)', {
        'w.h': 'struct W { Mutex mu_{analysis::Rank::kWalMutex}; };',
        'w.cc': '''Status Good(PageHandle& h) {
          h.latch().AcquireX();
          MutexLock lk(&mu_);
          h.latch().ReleaseX();
          return Status::OK();
        }'''}, []),
    ('rank-order fires interprocedurally', {
        'y.h': 'struct S { Mutex mu{analysis::Rank::kPoolShard}; };',
        'y.cc': '''void Helper(PageHandle& h) {
          h.latch().AcquireX();
          h.latch().ReleaseX();
        }
        Status Bad(Shard& s, PageHandle& h) {
          MutexLock lk(&mu);
          Helper(h);
          return Status::OK();
        }'''}, [('rank-order', 7)]),
    ('epoch-block fires on blocking acquire in epoch section', {
        'e.cc': '''Status Bad(Mutex& m) {
          EpochGuard g;
          MutexLock lk(&m);
          return Status::OK();
        }'''}, [('epoch-block', 3)]),
    ('epoch-block fires via callee I/O', {
        'f.cc': '''Status Io(char* buf) {
          return ReadPage(1, buf);
        }
        Status Bad(char* buf) {
          EpochGuard g;
          return Io(buf);
        }'''}, [('epoch-block', 6)]),
    ('epoch-block quiet after the guard scope closes', {
        'g.cc': '''Status Good(Mutex& m, char* buf) {
          {
            EpochGuard g;
            if (!TryRead(buf)) return Status::Busy("");
          }
          MutexLock lk(&m);
          return Status::OK();
        }'''}, []),
    ('latch-io fires on write under latch', {
        'h.cc': '''Status Bad(PageHandle& h) {
          h.latch().AcquireS();
          Status s = WritePage(h.id(), h.data());
          h.latch().ReleaseS();
          return s;
        }'''}, [('latch-io', 3)]),
    ('latch-io suppressed with a marker', {
        'i.cc': '''Status Flush(PageHandle& h) {
          h.latch().AcquireS();
          // analyze:allow-latch-io -- flushing under S is the design
          Status s = WritePage(h.id(), h.data());
          h.latch().ReleaseS();
          return s;
        }'''}, []),
    ('unbalanced fires on an early return holding a latch', {
        'j.cc': '''Status Bad(PageHandle& h) {
          h.latch().AcquireS();
          if (h.id() == 0) return Status::Corruption("");
          h.latch().ReleaseS();
          return Status::OK();
        }'''}, [('unbalanced', 3)]),
    ('unbalanced quiet with a tsa-escape (intentional span)', {
        'k.cc': '''// lint:tsa-escape -- hands the latched page to the caller
        Status Descend(PageHandle& h) {
          h.latch().AcquireS();
          return Status::OK();
        }'''}, []),
    ('olc-deref fires on raw deref in the window', {
        'l.cc': '''bool Bad(Latch& l, PageHandle& h) {
          uint64_t w = l.OptimisticBegin();
          char c = h.data()[0];
          return l.Validate(w) && c;
        }'''}, [('olc-deref', 3)]),
    ('olc-deref quiet when a callee validates first', {
        'm.cc': '''bool CopyOut(Latch& l, uint64_t w, char* out) {
          return l.Validate(w);
        }
        bool Good(Latch& l, PageHandle& h, char* out) {
          uint64_t w = l.OptimisticBegin();
          if (!CopyOut(l, w, out)) return false;
          return out.data()[0] != 0;
        }'''}, []),
]


def self_test():
    failures = 0
    for name, snippets, expected in _EMBEDDED:
        got = [(f.rule, f.lineno) for f in _run_snippet(snippets)
               if not f.suppressed]
        if sorted(got) != sorted(expected):
            failures += 1
            print(f'SELF-TEST FAIL: {name}: expected {expected}, got {got}',
                  file=sys.stderr)
    # Testdata corpus: every fixture declares its expectations inline with
    # `EXPECT-FINDING: <rule>` comments on the offending line.
    tdir = REPO_ROOT / 'tools' / 'analyze' / 'testdata'
    expect_re = re.compile(r'EXPECT-FINDING:\s*([\w-]+)')
    for fixture in sorted(tdir.glob('*.cc')):
        text = fixture.read_text()
        expected = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            for m in expect_re.finditer(line):
                expected.append((m.group(1), lineno))
        extra = {}
        for co in sorted(tdir.glob(fixture.stem + '*.h')):
            extra[co.name] = co.read_text()
        extra[fixture.name] = text
        got = [(f.rule, f.lineno) for f in _run_snippet(extra)
               if not f.suppressed]
        if sorted(got) != sorted(expected):
            failures += 1
            print(f'SELF-TEST FAIL: {fixture.name}: expected '
                  f'{sorted(expected)}, got {sorted(got)}', file=sys.stderr)
    # Clang-AST frontend: the synthetic dump must produce the same findings
    # as its lexed twin.
    ast_fixture = tdir / 'synthetic_ast.json'
    if ast_fixture.exists():
        ast = json.loads(ast_fixture.read_text())
        fns, mk = parse_clang_ast('synthetic.cc', ast, '', {})
        sums, by_name = compute_summaries(fns)
        got = []
        for fn in fns:
            got += [(f.rule, f.lineno)
                    for f in check_function(fn, sums, by_name, mk)]
        expected = [('epoch-block', 12), ('unbalanced', 22)]
        if sorted(got) != sorted(expected):
            failures += 1
            print(f'SELF-TEST FAIL: synthetic_ast.json: expected '
                  f'{expected}, got {sorted(got)}', file=sys.stderr)
    else:
        failures += 1
        print('SELF-TEST FAIL: testdata/synthetic_ast.json missing',
              file=sys.stderr)
    if failures:
        return 2
    n = len(_EMBEDDED) + len(list(tdir.glob('*.cc'))) + 1
    print(f'self-test OK: {n} cases')
    return 0


if __name__ == '__main__':
    sys.exit(main(sys.argv[1:]))
