// Crash recovery demo — the paper's claim 4 in action.
//
// Runs a workload, "pulls the plug" mid-flight (SimEnv discards every byte
// not explicitly synced, exactly like a power failure losing the OS cache),
// and reopens the database. Recovery replays the log: committed work
// survives, the in-flight transaction vanishes, and any structure change
// caught between its atomic actions is simply left in its (well-formed)
// intermediate state, to be completed by ordinary traversals afterward.

#include <cstdio>
#include <memory>

#include "db/database.h"
#include "env/sim_env.h"

using namespace pitree;

namespace {
std::string Key(int i) {
  char buf[24];
  snprintf(buf, sizeof(buf), "row%08d", i);
  return buf;
}
}  // namespace

int main() {
  SimEnv env;
  Options options;

  printf("--- phase 1: populate, then crash mid-transaction ---\n");
  {
    std::unique_ptr<Database> db;
    if (!Database::Open(options, &env, "demo", &db).ok()) return 1;
    PiTree* table = nullptr;
    if (!db->CreateIndex("table", &table).ok()) return 1;

    std::string value(150, 'd');
    for (int i = 0; i < 2000; ++i) {
      Transaction* txn = db->Begin();
      table->Insert(txn, Key(i), value).ok();
      db->Commit(txn).ok();  // commit forces the WAL — this work is durable
    }
    printf("committed 2000 rows (%llu page splits happened along the way)\n",
           (unsigned long long)table->stats().splits.load());

    // An in-flight transaction: inserts enough to trigger more splits,
    // never commits.
    Transaction* doomed = db->Begin();
    for (int i = 5000; i < 5400; ++i) {
      table->Insert(doomed, Key(i), value).ok();
    }
    // Push its log records to disk WITHOUT a commit — the worst case:
    // the crash must undo work that is already durable in the log.
    db->context()->wal->FlushAll().ok();
    printf("left a 400-row transaction uncommitted; crashing now...\n");

    env.Crash();   // power failure: unsynced state is gone
    db.release();  // the process is gone too; nothing runs destructors
  }

  printf("\n--- phase 2: reopen; recovery runs automatically ---\n");
  RecoveryStats stats;
  std::unique_ptr<Database> db;
  if (!Database::Open(options, &env, "demo", &db, &stats).ok()) return 1;
  printf("recovery: %llu records analyzed, %llu redone, %llu undone, "
         "%llu loser txns, %llu loser atomic actions\n",
         (unsigned long long)stats.records_analyzed,
         (unsigned long long)stats.records_redone,
         (unsigned long long)stats.records_undone,
         (unsigned long long)stats.loser_user_txns,
         (unsigned long long)stats.loser_atomic_actions);

  PiTree* table = nullptr;
  if (!db->GetIndex("table", &table).ok()) return 1;

  // Committed rows are all present.
  int present = 0, phantom = 0;
  for (int i = 0; i < 2000; ++i) {
    Transaction* txn = db->Begin();
    std::string v;
    if (table->Get(txn, Key(i), &v).ok()) ++present;
    db->Commit(txn).ok();
  }
  // The doomed transaction's rows are all gone.
  for (int i = 5000; i < 5400; ++i) {
    Transaction* txn = db->Begin();
    std::string v;
    if (table->Get(txn, Key(i), &v).ok()) ++phantom;
    db->Commit(txn).ok();
  }
  printf("committed rows found: %d/2000, uncommitted rows leaked: %d/400\n",
         present, phantom);

  std::string report;
  Status wf = table->CheckWellFormed(&report);
  printf("tree well-formed after recovery: %s\n",
         wf.ok() ? "yes" : report.c_str());

  // And the database is immediately serviceable.
  Transaction* txn = db->Begin();
  table->Insert(txn, "post-recovery", "works").ok();
  db->Commit(txn).ok();
  printf("post-recovery insert: ok\n");

  return (present == 2000 && phantom == 0 && wf.ok()) ? 0 : 1;
}
