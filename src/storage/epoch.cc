#include "storage/epoch.h"

#include <cassert>
#include <thread>

#include "analysis/latch_checker.h"

namespace pitree {

struct ThreadEpochState {
  int32_t slot = -1;  // claimed slot index in Global(), -1 = none
  uint32_t depth = 0;

  ~ThreadEpochState() {
    // Return the slot so the bounded slot array survives thread churn.
    // Global() is leaked, so this is safe during thread teardown; depth is
    // necessarily 0 here (a section cannot outlive its stack frames).
    if (slot >= 0) {
      EpochManager::Slot& s = EpochManager::Global()->slots_[slot];
      s.epoch.store(EpochManager::kIdle, std::memory_order_release);
      s.claimed.store(0, std::memory_order_release);
    }
  }
};

namespace {
thread_local ThreadEpochState t_epoch;
}  // namespace

EpochManager* EpochManager::Global() {
  static EpochManager* mgr = new EpochManager();  // leaked, see header
  return mgr;
}

bool EpochManager::ClaimSlot() {
  for (uint32_t i = 0; i < kMaxSlots; ++i) {
    uint32_t expected = 0;
    if (slots_[i].claimed.compare_exchange_strong(
            expected, 1, std::memory_order_acq_rel)) {
      t_epoch.slot = static_cast<int32_t>(i);
      uint32_t hw = high_water_.load(std::memory_order_relaxed);
      while (hw < i + 1 && !high_water_.compare_exchange_weak(
                               hw, i + 1, std::memory_order_acq_rel)) {
      }
      return true;
    }
  }
  return false;
}

bool EpochManager::Enter() {
  ThreadEpochState& te = t_epoch;
  if (te.depth > 0) {
    // Nested section: keep the outer epoch pinned (refreshing it here could
    // let a grace period overtake copies staged by the outer section).
    ++te.depth;
    return true;
  }
  if (te.slot < 0 && !ClaimSlot()) return false;
  // seq_cst store: must be ordered before this thread's subsequent
  // version-word loads in the single total order the reclaimer's
  // fetch_or + slot scan also participate in (see header).
  slots_[te.slot].epoch.store(global_.load(std::memory_order_relaxed),
                              std::memory_order_seq_cst);
  te.depth = 1;
  analysis::OnOptimisticEnter();
  return true;
}

void EpochManager::Exit() {
  ThreadEpochState& te = t_epoch;
  assert(te.depth > 0);
  if (--te.depth == 0) {
    slots_[te.slot].epoch.store(kIdle, std::memory_order_release);
    analysis::OnOptimisticExit();
  }
}

bool EpochManager::InEpoch() const { return t_epoch.depth > 0; }

void EpochManager::WaitGracePeriod() {
  assert(t_epoch.depth == 0 &&
         "grace-period wait inside an epoch section would self-deadlock");
  const uint64_t target = global_.fetch_add(1, std::memory_order_seq_cst) + 1;
  const uint32_t n = high_water_.load(std::memory_order_acquire);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t spins = 0;
    for (;;) {
      const uint64_t e = slots_[i].epoch.load(std::memory_order_seq_cst);
      if (e == kIdle || e >= target) break;
      // Sections never block (checker-enforced), so the straggler is
      // running or preempted; spin briefly, then let it be scheduled.
      if (++spins >= 64) std::this_thread::yield();
    }
  }
}

}  // namespace pitree
