#ifndef PITREE_COMMON_RANDOM_H_
#define PITREE_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <cstdlib>

namespace pitree {

/// Small, fast xorshift-based PRNG for workload generation and fuzz tests.
/// Deterministic for a given seed; not thread-safe (use one per thread).
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ull) {}

  uint64_t Next() {
    // xorshift64*
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// True with probability 1/n.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Skewed value in [0, n): an approximate Zipf-like distribution produced
  /// by exponentiation, used to create hot spots in benchmark workloads.
  uint64_t Skewed(uint64_t n, double theta = 0.99);

 private:
  uint64_t state_;
};

/// Seed for randomized tests: the PITREE_TEST_SEED environment variable
/// when set (decimal or 0x-prefixed hex), else `fallback`. Tests announce
/// the seed they ran with on failure (SCOPED_TRACE) so any failing run can
/// be reproduced by exporting that value.
inline uint64_t TestSeed(uint64_t fallback) {
  const char* s = std::getenv("PITREE_TEST_SEED");
  if (s == nullptr || *s == '\0') return fallback;
  return std::strtoull(s, nullptr, 0);
}

inline uint64_t Random::Skewed(uint64_t n, double theta) {
  if (n <= 1) return 0;
  // Inverse-CDF of a bounded Pareto-ish distribution: value = n * u^(1/(1-theta)),
  // clipped to [0, n). Cheap, and hot enough to model contention.
  double u = NextDouble();
  double exponent = 1.0 / (1.0 - theta);
  uint64_t v = static_cast<uint64_t>(n * std::pow(u, exponent));
  return v >= n ? n - 1 : v;
}

}  // namespace pitree

#endif  // PITREE_COMMON_RANDOM_H_
