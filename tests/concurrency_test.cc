// Multi-threaded correctness tests: concurrent inserts/searches/deletes with
// structure changes in flight. The paper's protocol must deliver linearizable
// record operations, a well-formed tree at quiesce, and no lost updates, in
// every regime (CP/CNS x page-oriented/logical undo).

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "db/database.h"
#include "env/sim_env.h"

namespace pitree {
namespace {

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

struct Regime {
  bool consolidation;
  bool page_oriented;
  bool inline_completion;
  size_t workers;
  size_t sweep_interval_ms;  // 0 = no background sweeper/auditor
  const char* name;
};

const Regime kRegimes[] = {
    {true, false, true, 1, 0, "CP_logical_inline"},
    {false, false, true, 1, 0, "CNS_logical_inline"},
    {true, true, true, 1, 0, "CP_pageoriented_inline"},
    {true, false, false, 1, 0, "CP_logical_background"},
    // Sharded worker pool with the periodic sweep (idle consolidation
    // scanner + online auditor) racing the foreground traffic.
    {true, false, false, 4, 2, "CP_logical_pool4_sweep"},
};

class ConcurrencyTest : public ::testing::TestWithParam<Regime> {
 protected:
  void SetUp() override {
    Options opts;
    opts.consolidation_enabled = GetParam().consolidation;
    opts.page_oriented_undo = GetParam().page_oriented;
    opts.inline_completion = GetParam().inline_completion;
    opts.maintenance_workers = GetParam().workers;
    opts.maintenance_sweep_interval_ms = GetParam().sweep_interval_ms;
    opts.maintenance_audit_sample = 4;
    opts.buffer_pool_pages = 2048;
    ASSERT_TRUE(Database::Open(opts, &env_, "db", &db_).ok());
    ASSERT_TRUE(db_->CreateIndex("t", &tree_).ok());
  }

  /// Quiesces background maintenance so CheckWellFormed may run. Also
  /// asserts the auditor never saw an invariant violation in live traffic.
  void SettleMaintenance() {
    if (!GetParam().inline_completion || GetParam().sweep_interval_ms > 0) {
      db_->maintenance()->Stop();
      MaintenanceStats ms = db_->maintenance()->StatsSnapshot();
      EXPECT_EQ(ms.queue_depth, 0u);
      EXPECT_EQ(ms.audit_violations, 0u)
          << db_->maintenance()->last_audit_violation();
    }
  }

  SimEnv env_;
  std::unique_ptr<Database> db_;
  PiTree* tree_ = nullptr;
};

TEST_P(ConcurrencyTest, DisjointRangeInsertersDontInterfere) {
  const int kThreads = 6, kPerThread = 700;
  std::string value(64, 'v');
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Deadlock victims (possible under move-lock conversion, §4.2.2)
        // retry with a fresh transaction, as any client would.
        for (int attempt = 0; attempt < 100; ++attempt) {
          Transaction* txn = db_->Begin();
          Status s = tree_->Insert(txn, Key(t * 100000 + i), value);
          if (s.ok()) {
            if (!db_->Commit(txn).ok()) failures.fetch_add(1);
            break;
          }
          (void)db_->Abort(txn);
          if (!s.IsDeadlock() && !s.IsBusy()) {
            ADD_FAILURE() << "insert " << Key(t * 100000 + i) << ": "
                          << s.ToString();
            failures.fetch_add(1);
            break;
          }
          if (attempt == 99) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  SettleMaintenance();
  EXPECT_EQ(failures.load(), 0);
  std::string report;
  ASSERT_TRUE(tree_->CheckWellFormed(&report).ok()) << report;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; i += 97) {
      Transaction* txn = db_->Begin();
      std::string v;
      ASSERT_TRUE(tree_->Get(txn, Key(t * 100000 + i), &v).ok())
          << t << "/" << i;
      (void)db_->Commit(txn);
    }
  }
  EXPECT_GT(tree_->stats().splits.load(), 20u);
}

TEST_P(ConcurrencyTest, ContendedUpsertCounterHasNoLostUpdates) {
  // All threads increment the same small set of counters under X locks.
  const int kThreads = 4, kIncrements = 250, kCounters = 3;
  const uint64_t seed = TestSeed(1);
  SCOPED_TRACE("repro: PITREE_TEST_SEED=" + std::to_string(seed));
  for (int c = 0; c < kCounters; ++c) {
    Transaction* txn = db_->Begin();
    ASSERT_TRUE(tree_->Insert(txn, Key(c), "0").ok());
    ASSERT_TRUE(db_->Commit(txn).ok());
  }
  std::vector<std::thread> threads;
  std::atomic<int> committed{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rnd(seed + t);
      int done = 0;
      while (done < kIncrements) {
        std::string key = Key(static_cast<int>(rnd.Uniform(kCounters)));
        Transaction* txn = db_->Begin();
        std::string v;
        Status s = tree_->Get(txn, key, &v);
        if (s.ok()) {
          // Promote the S record lock to X via the update path.
          s = tree_->Update(txn, key, std::to_string(std::stoi(v) + 1));
        }
        if (s.ok()) {
          s = db_->Commit(txn);
          if (s.ok()) {
            ++done;
            committed.fetch_add(1);
            continue;
          }
        }
        (void)db_->Abort(txn);  // deadlock victim or busy: retry
      }
    });
  }
  for (auto& th : threads) th.join();
  int total = 0;
  for (int c = 0; c < kCounters; ++c) {
    Transaction* txn = db_->Begin();
    std::string v;
    ASSERT_TRUE(tree_->Get(txn, Key(c), &v).ok());
    (void)db_->Commit(txn);
    total += std::stoi(v);
  }
  EXPECT_EQ(total, committed.load());
  EXPECT_EQ(total, kThreads * kIncrements);
}

TEST_P(ConcurrencyTest, MixedWorkloadModelCheck) {
  // Threads own disjoint key ranges (so a per-range model needs no global
  // lock ordering) but share every tree structure: splits, postings and
  // consolidations interleave freely across threads.
  const int kThreads = 5, kOps = 1500;
  const uint64_t seed = TestSeed(1000);
  SCOPED_TRACE("repro: PITREE_TEST_SEED=" + std::to_string(seed));
  std::string report;
  std::vector<std::map<std::string, std::string>> models(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rnd(seed + t);
      auto& model = models[t];
      for (int i = 0; i < kOps; ++i) {
        std::string key = Key(t * 100000 + static_cast<int>(rnd.Uniform(400)));
        int op = static_cast<int>(rnd.Uniform(4));
        Transaction* txn = db_->Begin();
        Status s;
        switch (op) {
          case 0:
          case 1: {
            std::string value(1 + rnd.Uniform(100), 'a' + t);
            s = tree_->Insert(txn, key, value);
            if (s.ok() && db_->Commit(txn).ok()) {
              model[key] = value;
            } else if (!s.ok()) {
              (void)db_->Abort(txn);
            }
            break;
          }
          case 2: {
            s = tree_->Delete(txn, key);
            if (s.ok() && db_->Commit(txn).ok()) {
              model.erase(key);
            } else if (!s.ok()) {
              (void)db_->Abort(txn);
            }
            break;
          }
          case 3: {
            std::string v;
            s = tree_->Get(txn, key, &v);
            auto it = model.find(key);
            if (it != model.end()) {
              EXPECT_TRUE(s.ok()) << key;
              if (s.ok()) {
                EXPECT_EQ(v, it->second);
              }
            } else {
              EXPECT_TRUE(s.IsNotFound()) << key;
            }
            (void)db_->Commit(txn);
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  SettleMaintenance();
  ASSERT_TRUE(tree_->CheckWellFormed(&report).ok()) << report;
  for (int t = 0; t < kThreads; ++t) {
    for (const auto& [k, v] : models[t]) {
      Transaction* txn = db_->Begin();
      std::string got;
      ASSERT_TRUE(tree_->Get(txn, k, &got).ok()) << k;
      EXPECT_EQ(got, v);
      (void)db_->Commit(txn);
    }
  }
}

TEST_P(ConcurrencyTest, ReadersRunDuringSplitStorm) {
  // Pre-load, then one writer thread splits constantly while readers scan.
  const uint64_t seed = TestSeed(50);
  SCOPED_TRACE("repro: PITREE_TEST_SEED=" + std::to_string(seed));
  std::string value(500, 'v');
  for (int i = 0; i < 200; ++i) {
    Transaction* txn = db_->Begin();
    ASSERT_TRUE(tree_->Insert(txn, Key(2 * i), value).ok());
    ASSERT_TRUE(db_->Commit(txn).ok());
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 600; ++i) {
      Transaction* txn = db_->Begin();
      Status s = tree_->Insert(txn, Key(100000 + i), value);
      if (s.ok()) {
        (void)db_->Commit(txn);
      } else {
        (void)db_->Abort(txn);
      }
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  std::atomic<int> reads{0};
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Random rnd(seed + r);
      while (!stop.load()) {
        Transaction* txn = db_->Begin();
        std::string v;
        int i = 2 * static_cast<int>(rnd.Uniform(200));
        Status s = tree_->Get(txn, Key(i), &v);
        EXPECT_TRUE(s.ok()) << Key(i);
        (void)db_->Commit(txn);
        reads.fetch_add(1);
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  SettleMaintenance();
  EXPECT_GT(reads.load(), 100);
  std::string report;
  ASSERT_TRUE(tree_->CheckWellFormed(&report).ok()) << report;
}

TEST_P(ConcurrencyTest, ConcurrentDeletersAndConsolidation) {
  std::string value(128, 'd');
  const int kN = 3000;
  for (int i = 0; i < kN; ++i) {
    Transaction* txn = db_->Begin();
    ASSERT_TRUE(tree_->Insert(txn, Key(i), value).ok());
    ASSERT_TRUE(db_->Commit(txn).ok());
  }
  const int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Thread t deletes keys with i % kThreads == t, except multiples of 10.
      for (int i = t; i < kN; i += kThreads) {
        if (i % 10 == 0) continue;
        Transaction* txn = db_->Begin();
        Status s = tree_->Delete(txn, Key(i));
        if (s.ok()) {
          (void)db_->Commit(txn);
        } else {
          (void)db_->Abort(txn);
          ADD_FAILURE() << "delete failed: " << s.ToString();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  SettleMaintenance();
  std::string report;
  ASSERT_TRUE(tree_->CheckWellFormed(&report).ok()) << report;
  Transaction* txn = db_->Begin();
  std::vector<NodeEntry> out;
  ASSERT_TRUE(tree_->Scan(txn, Key(0), kN, &out).ok());
  (void)db_->Commit(txn);
  ASSERT_EQ(out.size(), static_cast<size_t>(kN / 10));
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].key, Key(static_cast<int>(i) * 10));
  }
}

INSTANTIATE_TEST_SUITE_P(Regimes, ConcurrencyTest,
                         ::testing::ValuesIn(kRegimes),
                         [](const ::testing::TestParamInfo<Regime>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace pitree
