#include "harness/fault_harness.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "common/random.h"
#include "db/database.h"
#include "recovery/checkpoint.h"
#include "wal/log_reader.h"
#include "wal/wal_segments.h"

namespace pitree {
namespace harness {

namespace {

// Process-wide accumulators behind GetOnlineOptimisticTotals(): the explorer
// sums them over every crash point it replays online.
std::atomic<uint64_t> g_online_opt_hits{0};
std::atomic<uint64_t> g_online_opt_fallbacks{0};

std::string Key(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

constexpr char kIndexName[] = "t";
constexpr char kDbName[] = "db";
constexpr char kWalFile[] = "db.wal";

}  // namespace

Expect ClassifyKey(const std::vector<KeyOp>& ops, Lsn prefix_end) {
  // Walk the key's committed ops backward: the latest op whose commit record
  // is provably inside the prefix decides. An op whose bracket straddles the
  // prefix end makes the key undecidable; an op provably outside is simply
  // not there yet, so the previous op decides.
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    if (prefix_end >= it->upper) {
      return it->is_delete ? Expect::kAbsent : Expect::kPresent;
    }
    if (prefix_end > it->lower) return Expect::kUnknown;
  }
  return Expect::kAbsent;
}

Options WorkloadOptions(const ExplorerConfig& cfg) {
  Options opts;
  opts.consolidation_enabled = true;
  opts.page_oriented_undo = false;
  opts.maintenance_workers = cfg.maintenance_workers;
  opts.inline_completion = cfg.maintenance_workers == 0;
  opts.checkpoint_interval_ms = cfg.checkpoint_interval_ms;
  opts.checkpoint_log_bytes = cfg.checkpoint_log_bytes;
  opts.wal_segment_bytes = cfg.wal_segment_bytes;
  // A pool large enough that data pages are never evicted mid-run: the data
  // file then only changes through explicit flushes (checkpoint, shutdown),
  // keeping the event journal — and so the crash-state space — compact.
  opts.buffer_pool_pages = 4096;
  // Exercise the sharded pool paths (per-shard tables, I/O outside the shard
  // lock) under every explored crash schedule, not just the 1-shard layout.
  opts.buffer_pool_shards = 4;
  return opts;
}

::testing::AssertionResult RunScriptedWorkload(const ExplorerConfig& cfg,
                                               WorkloadTrace* out) {
  out->seed = cfg.seed;
  out->events.clear();
  out->committed_ops.clear();
  out->never_committed.clear();

  SimEnv env;
  FaultPlan plan;
  plan.EnableRecording();
  Options opts = WorkloadOptions(cfg);
  opts.fault_plan = &plan;

  std::unique_ptr<Database> db;
  Status s = Database::Open(opts, &env, kDbName, &db);
  if (!s.ok()) {
    return ::testing::AssertionFailure() << "open: " << s.ToString();
  }
  PiTree* tree = nullptr;
  s = db->CreateIndex(kIndexName, &tree);
  if (!s.ok()) {
    return ::testing::AssertionFailure() << "create index: " << s.ToString();
  }
  WalManager* wal = db->context()->wal;

  std::mutex trace_mu;
  std::atomic<int> errors{0};
  std::string last_error;

  // Runs `op` in its own transaction, retrying conflict terminations, and
  // stamps the [lower, upper] durability bracket of the commit on success.
  auto commit_one = [&](const std::function<Status(Transaction*)>& op,
                        const std::string& key, bool is_delete) {
    for (int attempt = 0; attempt < 100; ++attempt) {
      Transaction* txn = db->Begin();
      Status os = op(txn);
      if (os.ok()) {
        Lsn lower = wal->next_lsn();
        Status cs = db->Commit(txn);
        if (!cs.ok()) {
          errors.fetch_add(1);
          std::lock_guard<std::mutex> lk(trace_mu);
          last_error = "commit " + key + ": " + cs.ToString();
          return;
        }
        Lsn upper = wal->durable_lsn();
        std::lock_guard<std::mutex> lk(trace_mu);
        out->committed_ops[key].push_back({lower, upper, is_delete});
        return;
      }
      (void)db->Abort(txn);
      if (!os.IsBusy() && !os.IsDeadlock()) {
        errors.fetch_add(1);
        std::lock_guard<std::mutex> lk(trace_mu);
        last_error = "op " + key + ": " + os.ToString();
        return;
      }
    }
    errors.fetch_add(1);
    std::lock_guard<std::mutex> lk(trace_mu);
    last_error = "op " + key + ": retries exhausted";
  };

  const std::string value(110, 'v');

  // Concurrent insert phase: each writer owns a disjoint key range and
  // inserts it in a seed-shuffled order. The volume forces leaf splits, so
  // index-term postings flow through the background workers while commits
  // keep forcing the log.
  std::vector<std::thread> writers;
  for (int t = 0; t < cfg.threads; ++t) {
    writers.emplace_back([&, t] {
      Random rnd(cfg.seed * 7919 + static_cast<uint64_t>(t));
      std::vector<int> order(cfg.keys_per_thread);
      for (int i = 0; i < cfg.keys_per_thread; ++i) order[i] = i;
      for (int i = cfg.keys_per_thread - 1; i > 0; --i) {
        std::swap(order[i], order[rnd.Uniform(static_cast<uint64_t>(i) + 1)]);
      }
      for (int i : order) {
        std::string k = Key(t * 100000 + i);
        commit_one(
            [&](Transaction* txn) { return tree->Insert(txn, k, value); }, k,
            false);
      }
    });
  }
  for (auto& th : writers) th.join();

  // Committed deletes that hollow out writer 0's low range far below the
  // utilization threshold, so sweeps and traversals schedule consolidations.
  int deletions = std::min(cfg.keys_per_thread, 36);
  for (int i = 0; i < deletions; ++i) {
    if (i % 6 == 5) continue;  // leave stragglers so the range stays live
    std::string k = Key(i);
    commit_one([&](Transaction* txn) { return tree->Delete(txn, k); }, k,
               true);
  }

  // A fuzzy checkpoint mid-history: its master-record replacement and
  // page flushes become sync points of their own, and recoveries from
  // later crash states must combine the master record with the log tail.
  s = db->Checkpoint();
  if (!s.ok()) {
    return ::testing::AssertionFailure() << "checkpoint: " << s.ToString();
  }

  // Post-checkpoint inserts (redo work that lives only in the log tail).
  for (int i = 0; i < 12; ++i) {
    std::string k = Key(500000 + i);
    commit_one([&](Transaction* txn) { return tree->Insert(txn, k, value); },
               k, false);
  }

  // An explicitly aborted transaction: rollback writes CLRs, and a crash may
  // land anywhere inside that chain — the keys must be absent regardless.
  {
    Transaction* txn = db->Begin();
    for (int i = 0; i < 8; ++i) {
      std::string k = Key(600000 + i);
      Status is = tree->Insert(txn, k, value);
      if (!is.ok()) {
        return ::testing::AssertionFailure()
               << "abort-txn insert " << k << ": " << is.ToString();
      }
      out->never_committed.push_back(k);
    }
    s = db->Abort(txn);
    if (!s.ok()) {
      return ::testing::AssertionFailure() << "abort: " << s.ToString();
    }
  }

  // Checkpointer regime: the recorded journal must contain segment
  // deletions, or the explorer proves nothing about truncation. The
  // workload above appended far more log than the checkpoint byte budget,
  // so the background thread WILL truncate once it gets CPU — but under a
  // loaded machine (parallel test jobs) it can be starved past the whole
  // workload. Wait for it here, before the loser transaction below opens
  // and pins the floor at its own kBegin. Bounded so a genuinely stuck
  // checkpointer still fails the caller's deletions>0 assertion.
  if (cfg.checkpoint_interval_ms > 0 || cfg.checkpoint_log_bytes > 0) {
    for (int i = 0; i < 10000; ++i) {
      if (db->wal_stats().truncated_segments > 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  // The loser: a multi-op transaction still in flight at every crash point.
  // Its updates are made durable (FlushAll) without a commit record, so
  // recovery must undo them — including any splits they triggered, which as
  // separate atomic actions must NOT be undone.
  {
    Transaction* loser = db->Begin();
    for (int i = 0; i < 30; ++i) {
      std::string k = Key(700000 + i);
      Status is = tree->Insert(loser, k, value);
      if (!is.ok()) {
        return ::testing::AssertionFailure()
               << "loser insert " << k << ": " << is.ToString();
      }
      out->never_committed.push_back(k);
    }
    s = wal->FlushAll();
    if (!s.ok()) {
      return ::testing::AssertionFailure() << "loser flush: " << s.ToString();
    }
    // `loser` is intentionally left open; the shutdown below must not
    // commit it, and ~Database reclaims the object.
  }

  if (errors.load() != 0) {
    return ::testing::AssertionFailure()
           << errors.load() << " workload ops failed; last: " << last_error;
  }

  // Clean shutdown: drains maintenance and flushes WAL + dirty pages, all of
  // which append further events — the explorer crashes inside shutdown too.
  db.reset();

  out->events = plan.TakeRecording();
  return ::testing::AssertionSuccess();
}

void MaterializeCrashImage(const std::vector<SyncEvent>& events, size_t n,
                           const TornVariant* torn, SimEnv* env) {
  std::map<std::string, std::string> images;
  auto apply = [&images](const SyncEvent& ev) {
    if (ev.deleted) {
      // Deletion (WAL segment truncation) is durable when journaled: every
      // later crash image lacks the file.
      images.erase(ev.file);
      return;
    }
    std::string& img = images[ev.file];
    if (ev.atomic_replace) {
      img = ev.bytes;
      return;
    }
    img.resize(ev.durable_size, '\0');
    if (!ev.bytes.empty()) {
      img.replace(ev.offset, ev.bytes.size(), ev.bytes);
    }
  };
  for (size_t i = 0; i < n && i < events.size(); ++i) apply(events[i]);

  if (torn != nullptr && n < events.size()) {
    const SyncEvent& ev = events[n];
    // Atomic replacements cannot tear by contract (write + sync + rename),
    // and a deletion has no byte range; only an in-place event has an
    // in-flight range to tear.
    if (!ev.atomic_replace && !ev.deleted && !ev.bytes.empty()) {
      std::string& img = images[ev.file];
      size_t keep = static_cast<size_t>(
          std::min<uint64_t>(torn->keep_bytes, ev.bytes.size()));
      size_t reach = torn->garbage_tail ? ev.bytes.size() : keep;
      if (img.size() < ev.offset + reach) {
        img.resize(ev.offset + reach, '\0');
      }
      img.replace(ev.offset, keep, ev.bytes.data(), keep);
      std::fill(img.begin() + static_cast<ptrdiff_t>(ev.offset + keep),
                img.begin() + static_cast<ptrdiff_t>(ev.offset + reach),
                '\xCD');
    }
  }

  for (const auto& [file, bytes] : images) {
    Status s = env->WriteFileAtomic(file, bytes);
    (void)s;  // in-memory env without a plan installed: cannot fail
  }
}

Lsn ValidWalPrefix(SimEnv* env, const std::string& wal_base) {
  // Inspect mode: mount whatever segments the image retains without
  // repairing anything. Truncated history shortens the scan from below
  // (floor); the valid-record walk still finds the torn tail from above.
  WalSegmentSet set;
  if (!set.Open(env, wal_base, /*read_only=*/true).ok()) return 0;
  if (set.empty()) return 0;
  LogReader reader(set.reader_view(), set.floor_lsn(),
                   /*read_ahead=*/64 << 10);
  LogRecord rec;
  Lsn end = set.floor_lsn();
  while (reader.ReadNext(&rec).ok()) end = reader.offset();
  return end;
}

namespace {

// MVCC commit-timestamp audit over the valid WAL prefix, shared by both
// oracles: commit timestamps are allocated under the commit-order mutex
// with the commit record's append, so in LSN order they must be strictly
// monotone; the maximum (including the checkpoint's oracle high-water,
// which covers records truncated from the analysis scan's view) is the
// floor the restarted oracle must clear.
::testing::AssertionResult AuditWalCommitTs(SimEnv* env, Lsn prefix_end,
                                            uint64_t* max_commit_ts,
                                            const std::string& label) {
  *max_commit_ts = 0;
  WalSegmentSet set;
  if (!set.Open(env, kWalFile, /*read_only=*/true).ok() || set.empty()) {
    return ::testing::AssertionSuccess();
  }
  // Commit records truncated away with their segments are covered by the
  // surviving checkpoint-end's oracle high-water, which the loop below
  // still folds in.
  LogReader reader(set.reader_view(), set.floor_lsn(),
                   /*read_ahead=*/64 << 10);
  LogRecord rec;
  uint64_t prev = 0;
  while (reader.ReadNext(&rec).ok() && reader.offset() <= prefix_end) {
    if (rec.type == LogRecordType::kCommit && rec.commit_ts != 0) {
      if (rec.commit_ts <= prev) {
        return ::testing::AssertionFailure()
               << label << ": commit timestamps not strictly monotone: "
               << rec.commit_ts << " after " << prev << " at lsn " << rec.lsn;
      }
      prev = rec.commit_ts;
      *max_commit_ts = std::max(*max_commit_ts, rec.commit_ts);
    } else if (rec.type == LogRecordType::kCheckpointEnd) {
      CheckpointData data;
      if (DecodeCheckpoint(rec.misc, &data).ok()) {
        *max_commit_ts = std::max(*max_commit_ts, data.oracle_ts);
      }
    }
  }
  return ::testing::AssertionSuccess();
}

// Everything the oracle asserts about an opened database once recovery has
// fully repeated history; shared by the offline check and (after the
// traffic phase and the drain) the online one.
::testing::AssertionResult VerifyRecoveredDb(Database* db,
                                             const WorkloadTrace& trace,
                                             Lsn prefix_end,
                                             uint64_t max_commit_ts,
                                             const std::string& label) {
  auto fail = [&label]() {
    return ::testing::AssertionFailure() << label << ": ";
  };
  Status s;

  // The restarted oracle must never re-issue a durable commit timestamp.
  if (db->oracle()->last_issued() < max_commit_ts) {
    return fail() << "oracle restarted below durable commit ts "
                  << max_commit_ts << " (at " << db->oracle()->last_issued()
                  << ")";
  }
  if (db->oracle()->Next() <= max_commit_ts) {
    return fail() << "oracle re-issued a durable commit timestamp";
  }

  PiTree* tree = nullptr;
  Status gi = db->GetIndex(kIndexName, &tree);
  size_t must_have = 0;
  for (const auto& [key, ops] : trace.committed_ops) {
    if (ClassifyKey(ops, prefix_end) == Expect::kPresent) ++must_have;
  }
  if (!gi.ok()) {
    // Legal only if the crash predates the index creation being durable —
    // i.e. nothing is provably committed into it yet.
    if (must_have == 0) return ::testing::AssertionSuccess();
    return fail() << "index missing but " << must_have
                  << " committed keys are durable: " << gi.ToString();
  }

  std::string report;
  s = tree->CheckWellFormed(&report);
  if (!s.ok()) {
    return fail() << "not well-formed after recovery: " << report;
  }

  Transaction* txn = db->Begin();
  size_t checked = 0;
  for (const auto& [key, ops] : trace.committed_ops) {
    Expect e = ClassifyKey(ops, prefix_end);
    if (e == Expect::kUnknown) continue;
    ++checked;
    std::string v;
    Status g = tree->Get(txn, key, &v);
    if (e == Expect::kPresent && !g.ok()) {
      (void)db->Abort(txn);
      return fail() << "durably committed key lost: " << key << " ("
                    << g.ToString() << "), prefix_end=" << prefix_end;
    }
    if (e == Expect::kAbsent && !g.IsNotFound()) {
      (void)db->Abort(txn);
      return fail() << "key should be absent: " << key << " ("
                    << g.ToString() << "), prefix_end=" << prefix_end;
    }
  }
  for (const std::string& key : trace.never_committed) {
    std::string v;
    Status g = tree->Get(txn, key, &v);
    if (!g.IsNotFound()) {
      (void)db->Abort(txn);
      return fail() << "uncommitted key leaked: " << key << " ("
                    << g.ToString() << ")";
    }
  }
  s = db->Commit(txn);
  if (!s.ok()) return fail() << "oracle txn commit: " << s.ToString();

  // §2.1.3 audit along sampled live root-to-leaf paths (AuditPath also
  // works for absent keys: it audits the path to where the key would be).
  size_t seen = 0;
  for (const auto& [key, ops] : trace.committed_ops) {
    (void)ops;
    if (++seen % 17 != 0) continue;
    size_t nodes = 0;
    Status a = tree->AuditPath(key, &nodes, &report);
    if (!a.ok()) {
      return fail() << "AuditPath(" << key << "): " << report;
    }
  }

  // The recovered tree must accept new work and stay well-formed.
  txn = db->Begin();
  s = tree->Insert(txn, "post-crash-probe", "ok");
  if (!s.ok()) return fail() << "probe insert: " << s.ToString();
  s = db->Commit(txn);
  if (!s.ok()) return fail() << "probe commit: " << s.ToString();
  s = tree->CheckWellFormed(&report);
  if (!s.ok()) return fail() << "not well-formed after probe: " << report;

  (void)checked;
  return ::testing::AssertionSuccess();
}

}  // namespace

::testing::AssertionResult CheckPostRecoveryOracle(SimEnv* env,
                                                   const WorkloadTrace& trace,
                                                   const ExplorerConfig& cfg,
                                                   const std::string& label) {
  const Lsn prefix_end = ValidWalPrefix(env, kWalFile);
  uint64_t max_commit_ts = 0;
  ::testing::AssertionResult audit =
      AuditWalCommitTs(env, prefix_end, &max_commit_ts, label);
  if (!audit) return audit;

  // Recover with inline completion: the oracle's own checks then see a
  // stable tree without racing background workers. (Crash states produced
  // under workers must recover under any completion regime — §5.1 hints
  // carry no durability obligations.)
  Options opts = WorkloadOptions(cfg);
  opts.maintenance_workers = 0;
  opts.inline_completion = true;
  // The oracle's reopen must verify a fixed image deterministically: no
  // background checkpointer mutating the WAL underneath the checks.
  opts.checkpoint_interval_ms = 0;
  opts.checkpoint_log_bytes = 0;
  std::unique_ptr<Database> db;
  Status s = Database::Open(opts, env, kDbName, &db);
  if (!s.ok()) {
    return ::testing::AssertionFailure()
           << label << ": recovery failed: " << s.ToString();
  }
  return VerifyRecoveredDb(db.get(), trace, prefix_end, max_commit_ts, label);
}

::testing::AssertionResult CheckOnlineRecoveryOracle(
    SimEnv* env, const WorkloadTrace& trace, const ExplorerConfig& cfg,
    const std::string& label) {
  auto fail = [&label]() {
    return ::testing::AssertionFailure() << label << ": ";
  };
  const Lsn prefix_end = ValidWalPrefix(env, kWalFile);
  uint64_t max_commit_ts = 0;
  ::testing::AssertionResult audit =
      AuditWalCommitTs(env, prefix_end, &max_commit_ts, label);
  if (!audit) return audit;

  Options opts = WorkloadOptions(cfg);
  opts.maintenance_workers = 0;
  opts.inline_completion = true;
  // Deterministic verification (see CheckPostRecoveryOracle).
  opts.checkpoint_interval_ms = 0;
  opts.checkpoint_log_bytes = 0;
  opts.instant_restore = true;
  opts.recovery_sweeper = true;
  // Pace the sweeper so the map stays populated while the traffic below
  // races lazy redo; an instant drain would reduce this to the offline
  // check with extra steps.
  opts.recovery_sweep_delay_us = 20;
  std::unique_ptr<Database> db;
  Status s = Database::Open(opts, env, kDbName, &db);
  if (!s.ok()) {
    return fail() << "instant-restore open failed: " << s.ToString();
  }

  // Traffic during recovery. Readers sample every decidable key:
  // provably-durable commits must already read correctly mid-drain —
  // the pool replays a page before publishing its frame, so there is no
  // window where stale bytes are visible. A writer commits fresh keys
  // concurrently; redo of old history must not block new history.
  constexpr int kOnlineKeys = 24;
  PiTree* tree = nullptr;
  const bool have_index = db->GetIndex(kIndexName, &tree).ok();
  if (have_index) {
    std::atomic<int> traffic_errors{0};
    std::mutex err_mu;
    std::string first_error;
    auto note = [&](const std::string& msg) {
      traffic_errors.fetch_add(1);
      std::lock_guard<std::mutex> lk(err_mu);
      if (first_error.empty()) first_error = msg;
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < 2; ++t) {
      threads.emplace_back([&, t] {
        size_t i = 0;
        for (const auto& [key, ops] : trace.committed_ops) {
          if (static_cast<int>(i++ % 2) != t) continue;
          Expect e = ClassifyKey(ops, prefix_end);
          if (e == Expect::kUnknown) continue;
          Transaction* txn = db->Begin();
          std::string v;
          Status g = tree->Get(txn, key, &v);
          (void)db->Commit(txn);
          if (e == Expect::kPresent && !g.ok()) {
            note("mid-recovery read lost durable key " + key + ": " +
                 g.ToString());
          } else if (e == Expect::kAbsent && !g.IsNotFound()) {
            note("mid-recovery read saw key that must be absent " + key +
                 ": " + g.ToString());
          }
        }
      });
    }
    threads.emplace_back([&] {
      const std::string value(110, 'o');
      for (int i = 0; i < kOnlineKeys; ++i) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "online%05d", i);
        bool done = false;
        for (int attempt = 0; attempt < 100 && !done; ++attempt) {
          Transaction* txn = db->Begin();
          Status is = tree->Insert(txn, buf, value);
          if (is.ok()) {
            Status cs = db->Commit(txn);
            if (!cs.ok()) {
              note(std::string("online commit ") + buf + ": " + cs.ToString());
              return;
            }
            done = true;
            break;
          }
          (void)db->Abort(txn);
          if (!is.IsBusy() && !is.IsDeadlock()) {
            note(std::string("online insert ") + buf + ": " + is.ToString());
            return;
          }
        }
        if (!done) {
          note(std::string("online insert ") + buf + ": retries exhausted");
          return;
        }
      }
    });
    for (auto& th : threads) th.join();
    // Capture the optimistic-read counters while the sweeper may still be
    // draining: these reads ran against the commit-watermark oracle above.
    const PoolShardStats pstats = db->pool_stats().total;
    g_online_opt_hits.fetch_add(pstats.opt_hits, std::memory_order_relaxed);
    g_online_opt_fallbacks.fetch_add(pstats.opt_fallbacks,
                                     std::memory_order_relaxed);
    if (traffic_errors.load() != 0) {
      return fail() << traffic_errors.load()
                    << " online ops failed; first: " << first_error;
    }
  }

  s = db->WaitUntilRecovered();
  if (!s.ok()) return fail() << "WaitUntilRecovered: " << s.ToString();
  if (db->recovery_pending_pages() != 0) {
    return fail() << "recovery map not drained: "
                  << db->recovery_pending_pages() << " pages pending";
  }

  if (have_index) {
    // Commits made during recovery survived the drain.
    Transaction* txn = db->Begin();
    for (int i = 0; i < kOnlineKeys; ++i) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "online%05d", i);
      std::string v;
      Status g = tree->Get(txn, buf, &v);
      if (!g.ok()) {
        (void)db->Abort(txn);
        return fail() << "key committed during recovery lost: " << buf << " ("
                      << g.ToString() << ")";
      }
    }
    s = db->Commit(txn);
    if (!s.ok()) return fail() << "online-key check commit: " << s.ToString();
  }

  // With history fully repeated, the full offline oracle must hold.
  return VerifyRecoveredDb(db.get(), trace, prefix_end, max_commit_ts, label);
}

OnlineOptimisticTotals GetOnlineOptimisticTotals() {
  return {g_online_opt_hits.load(std::memory_order_relaxed),
          g_online_opt_fallbacks.load(std::memory_order_relaxed)};
}

}  // namespace harness
}  // namespace pitree
